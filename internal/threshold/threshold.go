// Package threshold implements the bandwidth thresholding optimization of
// §3.4: choosing the confidence thresholds (θL, θU) that minimize the
// fraction of frames sent to the cloud, δ(θL,θU), subject to the F-score
// constraint f(θL,θU) ≥ µ.
//
// An Evaluator precomputes, once per video, each frame's edge detections
// and cloud ground truth; evaluating one threshold pair is then a cheap
// pure computation, which the brute-force and gradient-step solvers call
// repeatedly. The semantics mirror the pipeline exactly: a frame is sent to
// the cloud when any detection's confidence falls inside [θL, θU]; a sent
// frame's client-visible result is the cloud labels, an unsent frame's
// result is its kept (confidence > θU) edge detections.
package threshold

import (
	"fmt"
	"math"

	"croesus/internal/detect"
	"croesus/internal/metrics"
	"croesus/internal/video"
)

// frameData is the per-frame precomputation.
type frameData struct {
	dets  []detect.Detection // edge detections (all classes)
	truth []detect.Detection // cloud detections (ground truth)
}

// Evaluator scores threshold pairs over one video.
type Evaluator struct {
	frames     []frameData
	queryClass string
	overlapMin float64
	evals      int
}

// NewEvaluator runs both models over the frames (pure detection, no
// latency) and returns an evaluator for the video's query class.
func NewEvaluator(frames []*video.Frame, edge, cloud detect.Model, queryClass string, overlapMin float64) *Evaluator {
	e := &Evaluator{queryClass: queryClass, overlapMin: overlapMin}
	for _, f := range frames {
		e.frames = append(e.frames, frameData{
			dets:  edge.Detect(f).Detections,
			truth: cloud.Detect(f).Detections,
		})
	}
	return e
}

// Evals reports how many threshold evaluations have been performed — the
// cost metric by which the gradient solver is "2.2× faster" in the paper.
func (e *Evaluator) Evals() int { return e.evals }

// ResetEvals clears the evaluation counter.
func (e *Evaluator) ResetEvals() { e.evals = 0 }

// Evaluate returns the F-score and bandwidth utilization δ for one
// threshold pair.
func (e *Evaluator) Evaluate(thetaL, thetaU float64) (f1, delta float64) {
	e.evals++
	var counts metrics.Counts
	sent := 0
	for i := range e.frames {
		fd := &e.frames[i]
		validate := false
		kept := fd.dets[:0:0]
		for _, d := range fd.dets {
			if d.Confidence < thetaL {
				continue // discarded
			}
			if d.Confidence <= thetaU {
				validate = true
				break
			}
			kept = append(kept, d)
		}
		if validate {
			sent++
			// Cloud-corrected: the client ends up seeing the truth.
			n := 0
			for _, d := range fd.truth {
				if d.Label == e.queryClass {
					n++
				}
			}
			counts.Add(metrics.Counts{TP: n})
			continue
		}
		counts.Add(metrics.ScoreClass(kept, fd.truth, e.queryClass, e.overlapMin))
	}
	if len(e.frames) == 0 {
		return 1, 0
	}
	return counts.F1(), float64(sent) / float64(len(e.frames))
}

// Result is a solver's chosen operating point.
type Result struct {
	ThetaL, ThetaU float64
	F1, BU         float64
	Evals          int // threshold evaluations spent by the solver
	Feasible       bool
}

func (r Result) String() string {
	return fmt.Sprintf("(θL=%.2f, θU=%.2f) F=%.3f BU=%.3f [%d evals, feasible=%v]",
		r.ThetaL, r.ThetaU, r.F1, r.BU, r.Evals, r.Feasible)
}

// better orders candidate points: feasible (F ≥ µ) beats infeasible;
// among feasible, lower BU wins (ties to higher F); among infeasible,
// higher F wins — "prioritizing thresholds that yield higher accuracy".
func better(a, b Result, mu float64) bool {
	af, bf := a.F1 >= mu, b.F1 >= mu
	switch {
	case af && !bf:
		return true
	case !af && bf:
		return false
	case af:
		if a.BU != b.BU {
			return a.BU < b.BU
		}
		return a.F1 > b.F1
	default:
		if a.F1 != b.F1 {
			return a.F1 > b.F1
		}
		return a.BU < b.BU
	}
}

// BruteForce scans the full (θL, θU) grid with the given step and returns
// the optimum under the paper's argthresh/argmin formulation.
func BruteForce(e *Evaluator, mu, step float64) Result {
	if step <= 0 {
		step = 0.05
	}
	start := e.evals
	best := Result{ThetaL: 0, ThetaU: 0, F1: -1}
	for l := 0.0; l < 1.0+1e-9; l += step {
		for u := l; u < 1.0+1e-9; u += step {
			f1, bu := e.Evaluate(l, u)
			cand := Result{ThetaL: l, ThetaU: u, F1: f1, BU: bu}
			if best.F1 < 0 || better(cand, best, mu) {
				best = cand
			}
		}
	}
	best.Evals = e.evals - start
	best.Feasible = best.F1 >= mu
	return best
}

// GradientStep solves the same problem with a coarse scan followed by
// projected local descent with a shrinking step — trading exactness for
// far fewer evaluations (the paper measures ≈ 2.2× faster than brute
// force).
func GradientStep(e *Evaluator, mu float64) Result {
	start := e.evals
	// Coarse scan seeds the descent basin.
	best := Result{F1: -1}
	const coarse = 0.25
	for l := 0.0; l < 1.0+1e-9; l += coarse {
		for u := l; u < 1.0+1e-9; u += coarse {
			f1, bu := e.Evaluate(l, u)
			cand := Result{ThetaL: l, ThetaU: u, F1: f1, BU: bu}
			if best.F1 < 0 || better(cand, best, mu) {
				best = cand
			}
		}
	}
	// Local descent over the four axis directions, halving the step.
	for step := 0.1; step >= 0.0125; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, d := range [][2]float64{{step, 0}, {-step, 0}, {0, step}, {0, -step}} {
				l := clamp01(best.ThetaL + d[0])
				u := clamp01(best.ThetaU + d[1])
				if l > u {
					continue
				}
				f1, bu := e.Evaluate(l, u)
				cand := Result{ThetaL: l, ThetaU: u, F1: f1, BU: bu}
				if better(cand, best, mu) {
					best = cand
					improved = true
				}
			}
		}
	}
	best.Evals = e.evals - start
	best.Feasible = best.F1 >= mu
	return best
}

// Cell is one heatmap entry.
type Cell struct {
	ThetaL, ThetaU float64
	F1, BU         float64
}

// Heatmap evaluates the full grid for the Figure 5 heatmaps.
func Heatmap(e *Evaluator, step float64) []Cell {
	if step <= 0 {
		step = 0.1
	}
	var cells []Cell
	for l := 0.0; l < 1.0+1e-9; l += step {
		for u := l; u < 1.0+1e-9; u += step {
			f1, bu := e.Evaluate(l, u)
			cells = append(cells, Cell{ThetaL: l, ThetaU: u, F1: f1, BU: bu})
		}
	}
	return cells
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}
