package randsrc

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamMatchesMathRand is the load-bearing guarantee: every derived
// value a call site can draw — across the rand.Rand method surface the
// repo uses — is bit-identical to rand.New(rand.NewSource(seed)). If this
// passes, swapping frameRNG/TxnFor over to randsrc cannot perturb any
// golden or report.
func TestStreamMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 89482311, int32max, int32max + 1, math.MaxInt64, math.MinInt64, -987654321012345}
	for _, seed := range seeds {
		ref := rand.New(rand.NewSource(seed))
		r := Get(seed)
		for i := 0; i < 500; i++ {
			switch i % 6 {
			case 0:
				if g, w := r.Rand.Int63(), ref.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, g, w)
				}
			case 1:
				if g, w := r.Rand.Uint64(), ref.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, g, w)
				}
			case 2:
				if g, w := r.Rand.Float64(), ref.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, g, w)
				}
			case 3:
				if g, w := r.Rand.NormFloat64(), ref.NormFloat64(); g != w {
					t.Fatalf("seed %d draw %d: NormFloat64 = %v, want %v", seed, i, g, w)
				}
			case 4:
				if g, w := r.Rand.Intn(7), ref.Intn(7); g != w {
					t.Fatalf("seed %d draw %d: Intn(7) = %d, want %d", seed, i, g, w)
				}
			case 5:
				if g, w := r.Rand.Intn(1<<40), ref.Intn(1<<40); g != w {
					t.Fatalf("seed %d draw %d: Intn(2^40) = %d, want %d", seed, i, g, w)
				}
			}
		}
		r.Put()
	}
}

// TestCachedReseedIdentical proves a pooled, cache-hit R restarts the
// stream from the top — reuse cannot leak position or state.
func TestCachedReseedIdentical(t *testing.T) {
	const seed = 12345
	first := make([]int64, 64)
	r := Get(seed) // cache miss: full expansion
	for i := range first {
		first[i] = r.Rand.Int63()
	}
	r.Put()
	for round := 0; round < 3; round++ {
		r := Get(seed) // cache hit on a pooled R
		for i := range first {
			if g := r.Rand.Int63(); g != first[i] {
				t.Fatalf("round %d draw %d: %d, want %d", round, i, g, first[i])
			}
		}
		r.Put()
	}
}

// TestInterleavedGets exercises several live Rs at once (the detect path
// holds a frame RNG while deriving per-track class RNGs).
func TestInterleavedGets(t *testing.T) {
	refA := rand.New(rand.NewSource(7))
	refB := rand.New(rand.NewSource(9))
	a, b := Get(7), Get(9)
	for i := 0; i < 200; i++ {
		if g, w := a.Rand.Float64(), refA.Float64(); g != w {
			t.Fatalf("a draw %d: %v want %v", i, g, w)
		}
		if g, w := b.Rand.Float64(), refB.Float64(); g != w {
			t.Fatalf("b draw %d: %v want %v", i, g, w)
		}
	}
	a.Put()
	b.Put()
}

func BenchmarkMathRandNewSource(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i % 64)))
		_ = rng.Int63()
	}
}

func BenchmarkRandsrcGet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Get(int64(i % 64))
		_ = r.Rand.Int63()
		r.Put()
	}
}
