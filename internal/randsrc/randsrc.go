// Package randsrc is the hot-path replacement for
// rand.New(rand.NewSource(seed)).
//
// The simulated detectors and the workload source derive a fresh
// deterministic RNG per (seed, frame) so that detections and transaction
// key draws are pure functions of their inputs — but math/rand's
// NewSource(seed) runs ~1,900 modular multiplications to expand the seed
// into the generator's 607-word feedback register, which profiling shows
// dominating fleet-simulation CPU (about a third of BenchmarkCluster at 16
// cameras). This package replicates the exact generator (the frozen
// Mitchell–Reeds additive lagged-Fibonacci source behind math/rand, cooked
// table included) and memoizes the post-seed register per seed: the first
// use of a seed pays the expansion once, every later use is a 4.9 KB copy.
// Rand wrappers and registers are pooled, so the steady-state path
// allocates nothing.
//
// The value stream is bit-identical to rand.New(rand.NewSource(seed)) —
// TestStreamMatchesMathRand locks this down — so swapping call sites over
// cannot change any golden, report, or calibrated accuracy ordering.
package randsrc

import (
	"math/rand"
	"sync"
)

const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1
)

// source replicates math/rand.rngSource. It implements rand.Source64, so
// rand.New drives it exactly as it would the stock source.
type source struct {
	tap  int
	feed int
	vec  [rngLen]int64
}

// seedrand computes x[n+1] = 48271 * x[n] mod (2**31 - 1) with Schrage's
// decomposition, exactly as math/rand does.
func seedrand(x int32) int32 {
	const (
		a = 48271
		q = 44488
		r = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// Seed expands seed into the feedback register (the expensive step this
// package exists to memoize).
func (s *source) Seed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap

	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}

	x := int32(seed)
	for i := -20; i < rngLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = seedrand(x)
			u ^= int64(x) << 20
			x = seedrand(x)
			u ^= int64(x)
			u ^= rngCooked[i]
			s.vec[i] = u
		}
	}
}

func (s *source) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}

func (s *source) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// R is a pooled RNG: a replica source plus the *rand.Rand that wraps it.
// Obtain with Get, use Rand, and return with Put when the derived values
// have been consumed. An R must not be used after Put.
type R struct {
	src  source
	Rand *rand.Rand
}

var rPool = sync.Pool{New: func() any {
	r := &R{}
	r.Rand = rand.New(&r.src)
	return r
}}

// seedCache memoizes post-Seed feedback registers. Bounded: when full, the
// cache resets wholesale (seed reuse is heavily clustered — a run's frame
// seeds recur every iteration — so a rare full reset costs one re-expansion
// per live seed).
var (
	cacheMu   sync.RWMutex
	seedCache = make(map[int64]*[rngLen]int64)
)

const cacheCap = 4096

// Get returns a pooled *R whose Rand produces the identical value stream
// to rand.New(rand.NewSource(seed)).
func Get(seed int64) *R {
	r := rPool.Get().(*R)
	cacheMu.RLock()
	st := seedCache[seed]
	cacheMu.RUnlock()
	if st != nil {
		r.src.tap = 0
		r.src.feed = rngLen - rngTap
		r.src.vec = *st
		return r
	}
	r.src.Seed(seed)
	st = new([rngLen]int64)
	*st = r.src.vec
	cacheMu.Lock()
	if len(seedCache) >= cacheCap {
		seedCache = make(map[int64]*[rngLen]int64, cacheCap)
	}
	seedCache[seed] = st
	cacheMu.Unlock()
	return r
}

// Put returns r to the pool.
func Put(r *R) { rPool.Put(r) }

// Put returns r to the pool (method form for defer-friendly call sites).
func (r *R) Put() { rPool.Put(r) }
