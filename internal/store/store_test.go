package store

import (
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put("a", StringValue("hello"))
	v, ok := s.Get("a")
	if !ok || AsString(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if !s.Delete("a") {
		t.Fatal("Delete of existing key returned false")
	}
	if s.Delete("a") {
		t.Fatal("Delete of absent key returned true")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still readable")
	}
}

func TestVersionsMonotonic(t *testing.T) {
	s := New()
	v1 := s.Put("a", StringValue("1"))
	v2 := s.Put("b", StringValue("2"))
	v3 := s.Put("a", StringValue("3"))
	if !(v1 < v2 && v2 < v3) {
		t.Errorf("versions not monotonic: %d %d %d", v1, v2, v3)
	}
	if s.Version("a") != v3 {
		t.Errorf("Version(a) = %d, want %d", s.Version("a"), v3)
	}
	if s.Version("missing") != 0 {
		t.Error("absent key must have version 0")
	}
}

func TestValueIsolation(t *testing.T) {
	s := New()
	buf := StringValue("abc")
	s.Put("k", buf)
	buf[0] = 'X' // mutating the caller's slice must not affect the store
	v, _ := s.Get("k")
	if AsString(v) != "abc" {
		t.Fatalf("store aliased caller buffer: %q", v)
	}
	v[0] = 'Y' // mutating a read result must not affect the store
	v2, _ := s.Get("k")
	if AsString(v2) != "abc" {
		t.Fatalf("read result aliased store: %q", v2)
	}
}

func TestKeysPrefix(t *testing.T) {
	s := New()
	s.Put("user:1", nil)
	s.Put("user:2", nil)
	s.Put("item:1", nil)
	got := s.Keys("user:")
	if len(got) != 2 || got[0] != "user:1" || got[1] != "user:2" {
		t.Errorf("Keys = %v", got)
	}
	if n := len(s.Keys("")); n != 3 {
		t.Errorf("all keys = %d, want 3", n)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	s.Put("a", StringValue("1"))
	s.Put("b", StringValue("2"))
	snap := s.Snapshot()
	s.Put("a", StringValue("overwritten"))
	s.Delete("b")
	s.Put("c", StringValue("3"))
	s.Restore(snap)
	if v, _ := s.Get("a"); AsString(v) != "1" {
		t.Errorf("a = %q after restore", v)
	}
	if _, ok := s.Get("c"); ok {
		t.Error("c survived restore")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestStats(t *testing.T) {
	s := New()
	s.Put("a", nil)
	s.Get("a")
	s.Get("b")
	s.Delete("a")
	r, w, d := s.Stats()
	if r != 2 || w != 1 || d != 1 {
		t.Errorf("Stats = %d %d %d", r, w, d)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := "k" + strconv.Itoa(j%17)
				s.Put(k, Int64Value(int64(i*1000+j)))
				s.Get(k)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 17 {
		t.Errorf("Len = %d, want 17", s.Len())
	}
}

func TestInt64Codec(t *testing.T) {
	f := func(v int64) bool {
		return AsInt64(Int64Value(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if AsInt64(nil) != 0 || AsInt64(StringValue("xx")) != 0 {
		t.Error("malformed values must decode to 0")
	}
}

func TestItoaKey(t *testing.T) {
	if k := ItoaKey("bldg", 42); k != "bldg:42" {
		t.Errorf("ItoaKey = %q", k)
	}
}
