// Package store implements the edge node's data store: a versioned,
// concurrency-safe in-memory key-value map. Transactions (package txn) layer
// undo logging and dependency tracking on top of it.
package store

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"
)

// Value is the stored payload. Values are copied on read and write so
// callers cannot alias the store's internal state.
type Value []byte

// Clone returns an independent copy of v.
func (v Value) Clone() Value {
	if v == nil {
		return nil
	}
	out := make(Value, len(v))
	copy(out, v)
	return out
}

type entry struct {
	val Value
	ver uint64
}

// Store is a thread-safe versioned key-value store.
type Store struct {
	mu   sync.RWMutex
	m    map[string]entry
	next uint64

	reads, writes, deletes atomic.Int64
}

// New returns an empty store.
func New() *Store {
	return &Store{m: make(map[string]entry)}
}

// Get returns the value stored at key and whether it exists.
func (s *Store) Get(key string) (Value, bool) {
	s.reads.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[key]
	if !ok {
		return nil, false
	}
	return e.val.Clone(), true
}

// Version returns the key's write version (0 if absent). Versions increase
// monotonically across all keys, so they double as a write timestamp.
func (s *Store) Version(key string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[key].ver
}

// Put stores value at key and returns the new version.
func (s *Store) Put(key string, value Value) uint64 {
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	// Re-writing a key with identical bytes (the dominant pattern for the
	// label workload) keeps the existing private clone instead of copying
	// the value again.
	if e, ok := s.m[key]; ok && bytes.Equal(e.val, value) {
		e.ver = s.next
		s.m[key] = e
		return s.next
	}
	s.m[key] = entry{val: value.Clone(), ver: s.next}
	return s.next
}

// Delete removes key; it reports whether the key existed.
func (s *Store) Delete(key string) bool {
	s.deletes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	delete(s.m, key)
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.m {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Stats reports cumulative operation counts.
func (s *Store) Stats() (reads, writes, deletes int64) {
	return s.reads.Load(), s.writes.Load(), s.deletes.Load()
}

// Snapshot returns a deep copy of the store's contents, for tests and
// experiment resets.
func (s *Store) Snapshot() map[string]Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Value, len(s.m))
	for k, e := range s.m {
		out[k] = e.val.Clone()
	}
	return out
}

// Restore replaces the store's contents with the snapshot.
func (s *Store) Restore(snap map[string]Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string]entry, len(snap))
	for k, v := range snap {
		s.next++
		s.m[k] = entry{val: v.Clone(), ver: s.next}
	}
}
