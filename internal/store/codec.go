package store

import (
	"encoding/binary"
	"strconv"
)

// Int64Value encodes an integer as a Value (used for counters and token
// balances in the examples and experiments).
func Int64Value(v int64) Value {
	b := make(Value, 8)
	binary.BigEndian.PutUint64(b, uint64(v))
	return b
}

// AsInt64 decodes an integer Value; it returns 0 for nil or malformed
// values.
func AsInt64(v Value) int64 {
	if len(v) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(v))
}

// StringValue encodes a string as a Value.
func StringValue(s string) Value { return Value(s) }

// AsString decodes a string Value.
func AsString(v Value) string { return string(v) }

// ItoaKey builds "prefix:n" keys without fmt in hot paths.
func ItoaKey(prefix string, n int) string {
	return prefix + ":" + strconv.Itoa(n)
}
