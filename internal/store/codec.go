package store

import (
	"encoding/binary"
	"strconv"
	"sync"
)

// Int64Value encodes an integer as a Value (used for counters and token
// balances in the examples and experiments).
func Int64Value(v int64) Value {
	b := make(Value, 8)
	binary.BigEndian.PutUint64(b, uint64(v))
	return b
}

// AsInt64 decodes an integer Value; it returns 0 for nil or malformed
// values.
func AsInt64(v Value) int64 {
	if len(v) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(v))
}

// StringValue encodes a string as a Value.
func StringValue(s string) Value { return Value(s) }

// AsString decodes a string Value.
func AsString(v Value) string { return string(v) }

// keyCache interns "prefix:n" strings per prefix in dense tables. Workload
// choosers draw millions of keys from small, fixed keyspaces, so building
// the string per draw (an Itoa plus a concat) dominates their allocation
// profile; the table pays each string once.
var (
	keyCacheMu sync.RWMutex
	keyCache   = make(map[string][]string)
)

// keyCacheMax bounds the per-prefix table (bigger indices fall back to
// direct construction).
const keyCacheMax = 1 << 16

// ItoaKey builds "prefix:n" keys without fmt in hot paths. Keys with small
// n are interned, so repeated draws from a bounded keyspace allocate
// nothing.
func ItoaKey(prefix string, n int) string {
	if n < 0 || n >= keyCacheMax {
		return prefix + ":" + strconv.Itoa(n)
	}
	keyCacheMu.RLock()
	tab := keyCache[prefix]
	if n < len(tab) {
		s := tab[n]
		keyCacheMu.RUnlock()
		return s
	}
	keyCacheMu.RUnlock()

	keyCacheMu.Lock()
	tab = keyCache[prefix]
	if n >= len(tab) {
		size := len(tab) * 2
		if size < 1024 {
			size = 1024
		}
		for size <= n {
			size *= 2
		}
		if size > keyCacheMax {
			size = keyCacheMax
		}
		grown := make([]string, size)
		copy(grown, tab)
		for i := len(tab); i < size; i++ {
			grown[i] = prefix + ":" + strconv.Itoa(i)
		}
		keyCache[prefix] = grown
		tab = grown
	}
	s := tab[n]
	keyCacheMu.Unlock()
	return s
}
