package vclock

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSimSleepAdvances(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		if s.Now() != 0 {
			t.Errorf("Now() = %v at start, want 0", s.Now())
		}
		s.Sleep(3 * time.Second)
		if s.Now() != 3*time.Second {
			t.Errorf("Now() = %v after sleep, want 3s", s.Now())
		}
		s.Sleep(500 * time.Millisecond)
		if s.Now() != 3500*time.Millisecond {
			t.Errorf("Now() = %v, want 3.5s", s.Now())
		}
	})
}

func TestSimSleepZeroOrNegative(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
		if s.Now() != 0 {
			t.Errorf("Now() = %v, want 0", s.Now())
		}
	})
}

func TestSimVirtualTimeIsFast(t *testing.T) {
	s := NewSim()
	start := time.Now()
	s.Run(func() {
		s.Sleep(10 * time.Hour)
	})
	if wall := time.Since(start); wall > 2*time.Second {
		t.Errorf("simulating 10h took %v of wall time", wall)
	}
	if s.Now() != 10*time.Hour {
		t.Errorf("Now() = %v, want 10h", s.Now())
	}
}

func TestSimWakeOrder(t *testing.T) {
	s := NewSim()
	rng := rand.New(rand.NewSource(42))
	const n = 50
	durs := make([]time.Duration, n)
	for i := range durs {
		durs[i] = time.Duration(rng.Intn(10000)+1) * time.Millisecond
	}
	var mu sync.Mutex
	var order []time.Duration
	for _, d := range durs {
		d := d
		s.Go(func() {
			s.Sleep(d)
			mu.Lock()
			order = append(order, d)
			mu.Unlock()
		})
	}
	s.Wait()
	if len(order) != n {
		t.Fatalf("woke %d sleepers, want %d", len(order), n)
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Errorf("sleepers woke out of duration order: %v", order)
	}
}

func TestSimConcurrentSleepersShareTimeline(t *testing.T) {
	s := NewSim()
	var aDone, bDone time.Duration
	s.Go(func() {
		s.Sleep(2 * time.Second)
		aDone = s.Now()
	})
	s.Go(func() {
		s.Sleep(5 * time.Second)
		bDone = s.Now()
	})
	s.Wait()
	if aDone != 2*time.Second || bDone != 5*time.Second {
		t.Errorf("aDone=%v bDone=%v, want 2s and 5s", aDone, bDone)
	}
}

func TestSimGateFireBeforeWait(t *testing.T) {
	s := NewSim()
	g := s.NewGate()
	s.Go(func() {
		g.Fire()
	})
	s.Go(func() {
		s.Sleep(time.Second) // let the firer go first
		g.Wait()
	})
	s.Wait()
}

func TestSimGateWaitThenFire(t *testing.T) {
	s := NewSim()
	g := s.NewGate()
	var wokenAt time.Duration
	s.Go(func() {
		g.Wait()
		wokenAt = s.Now()
	})
	s.Go(func() {
		s.Sleep(7 * time.Second)
		g.Fire()
	})
	s.Wait()
	if wokenAt != 7*time.Second {
		t.Errorf("waiter woke at %v, want 7s", wokenAt)
	}
}

func TestSimGateDoubleFire(t *testing.T) {
	s := NewSim()
	g := s.NewGate()
	s.Go(func() { g.Wait() })
	s.Go(func() {
		g.Fire()
		g.Fire() // must be a harmless no-op
	})
	s.Wait()
}

func TestSimDeadlockPanics(t *testing.T) {
	s := NewSim()
	g := s.NewGate()
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic from Wait, got clean exit")
		}
	}()
	s.Run(func() {
		g.Wait() // nobody will ever fire
	})
}

func TestSimDeadlockDetectedBeforeWait(t *testing.T) {
	// Two participants block on gates nobody fires while the driver is
	// still outside Wait; the deadlock is latched and reported when the
	// driver eventually calls Wait.
	s := NewSim()
	s.Go(func() { s.NewGate().Wait() })
	s.Go(func() { s.NewGate().Wait() })
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	s.Wait()
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	s := NewSim()
	sem := NewSemaphore(s, 2)
	var mu sync.Mutex
	cur, peak := 0, 0
	for i := 0; i < 10; i++ {
		s.Go(func() {
			sem.Acquire()
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			s.Sleep(time.Second)
			mu.Lock()
			cur--
			mu.Unlock()
			sem.Release()
		})
	}
	s.Wait()
	if peak != 2 {
		t.Errorf("peak concurrency = %d, want 2", peak)
	}
	// 10 one-second jobs on 2 slots need 5 seconds.
	if s.Now() != 5*time.Second {
		t.Errorf("elapsed = %v, want 5s", s.Now())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSim()
	sem := NewSemaphore(s, 1)
	s.Run(func() {
		if !sem.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if sem.TryAcquire() {
			t.Error("second TryAcquire succeeded on a full semaphore")
		}
		sem.Release()
		if !sem.TryAcquire() {
			t.Error("TryAcquire after Release failed")
		}
		sem.Release()
	})
}

func TestSemaphoreFIFO(t *testing.T) {
	s := NewSim()
	sem := NewSemaphore(s, 1)
	var mu sync.Mutex
	var order []int
	s.Go(func() {
		sem.Acquire()
		s.Sleep(10 * time.Second)
		sem.Release()
	})
	for i := 0; i < 5; i++ {
		i := i
		s.Go(func() {
			s.Sleep(time.Duration(i+1) * time.Second) // arrive in index order
			sem.Acquire()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Sleep(time.Second)
			sem.Release()
		})
	}
	s.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v not FIFO", order)
		}
	}
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	c.Sleep(5 * time.Millisecond)
	if c.Now() < 5*time.Millisecond {
		t.Errorf("Now() = %v, want >= 5ms", c.Now())
	}
	g := c.NewGate()
	c.Go(func() { g.Fire() })
	g.Wait()
	c.Wait()
}

// Property: for any set of sleep durations, total elapsed virtual time
// equals the maximum duration (parallel sleepers), and each sleeper
// observes exactly its own duration.
func TestSimParallelSleepProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		s := NewSim()
		var max time.Duration
		results := make([]time.Duration, len(raw))
		for i, r := range raw {
			d := time.Duration(r) * time.Millisecond
			if d > max {
				max = d
			}
			i, d := i, d
			s.Go(func() {
				s.Sleep(d)
				results[i] = s.Now()
			})
		}
		s.Wait()
		if s.Now() != max {
			return false
		}
		for i, r := range raw {
			if results[i] != time.Duration(r)*time.Millisecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: sequential sleeps accumulate exactly.
func TestSimSequentialSleepProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		s := NewSim()
		var want time.Duration
		ok := true
		s.Run(func() {
			for _, r := range raw {
				d := time.Duration(r) * time.Microsecond
				want += d
				s.Sleep(d)
				if s.Now() != want {
					ok = false
					return
				}
			}
		})
		return ok && s.Now() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
