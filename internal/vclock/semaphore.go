package vclock

import "sync"

// Semaphore is a counted resource with FIFO granting, usable under both the
// real and the simulated clock. It models limited compute slots (e.g., one
// detector on an edge machine, several on a cloud machine).
type Semaphore struct {
	clk Clock

	mu       sync.Mutex
	capacity int
	inUse    int
	queue    []Gate
}

// NewSemaphore returns a semaphore with the given capacity (> 0).
func NewSemaphore(clk Clock, capacity int) *Semaphore {
	if capacity <= 0 {
		panic("vclock: semaphore capacity must be positive")
	}
	return &Semaphore{clk: clk, capacity: capacity}
}

// Acquire takes one slot, blocking (in clock time) until one is available.
func (s *Semaphore) Acquire() {
	s.mu.Lock()
	if s.inUse < s.capacity && len(s.queue) == 0 {
		s.inUse++
		s.mu.Unlock()
		return
	}
	g := s.clk.NewGate()
	s.queue = append(s.queue, g)
	s.mu.Unlock()
	g.Wait()
}

// TryAcquire takes a slot without blocking; it reports whether it succeeded.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inUse < s.capacity && len(s.queue) == 0 {
		s.inUse++
		return true
	}
	return false
}

// Release returns one slot, handing it to the oldest waiter if any.
func (s *Semaphore) Release() {
	s.mu.Lock()
	if s.inUse <= 0 {
		s.mu.Unlock()
		panic("vclock: semaphore released more than acquired")
	}
	if len(s.queue) > 0 {
		g := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		g.Fire() // slot hand-off: inUse stays constant
		return
	}
	s.inUse--
	s.mu.Unlock()
}

// InUse reports the number of currently held slots.
func (s *Semaphore) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}
