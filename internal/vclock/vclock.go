// Package vclock provides a clock abstraction with two implementations: a
// real-time clock backed by the time package, and a deterministic
// virtual-time scheduler (Sim) in which sleeping for simulated seconds costs
// microseconds of wall time.
//
// The virtual scheduler is cooperative: every goroutine that participates in
// simulated time must be started with Go (or Run), and may block only
// through scheduler-aware primitives — Sleep, Gate, or Semaphore. A single
// external driver goroutine (typically a test or main) creates the Sim,
// spawns participants with Go, and calls Wait; virtual time advances only
// while the driver is parked in Wait and every participant is blocked. If
// every participant is blocked on a gate with no pending timer, the
// simulation has deadlocked and Wait panics with a diagnostic instead of
// hanging.
//
// # Determinism contract
//
// The scheduler's timer queue is sharded (NewSimSharded) so that concurrent
// sleepers contend on 1/K of a lock instead of one global mutex, and Now is
// a single atomic load. Shards advance between global all-blocked barriers:
// virtual time moves only when every participant is blocked, and the next
// wakeup is always the globally minimal (at, seq) event across all shards —
// exactly the order a single heap would produce. Replay is therefore
// byte-identical regardless of GOMAXPROCS and regardless of the shard
// count; sharding changes only which lock a Sleep touches, never the wake
// order.
package vclock

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the time source used throughout the Croesus code base. Both the
// in-process simulation (Sim) and the real deployment (Real) satisfy it, so
// node logic is written once and runs in either mode.
type Clock interface {
	// Now reports the elapsed time since the clock was created.
	Now() time.Duration
	// Sleep pauses the calling goroutine for d. On Sim, the caller must
	// have been started with Go.
	Sleep(d time.Duration)
	// NewGate returns a one-shot wakeup primitive usable with this clock.
	NewGate() Gate
	// Go starts fn on a new goroutine tracked by the clock.
	Go(fn func())
	// Wait blocks until every goroutine started with Go has returned.
	Wait()
}

// Gate is a one-shot synchronization point: exactly one goroutine Waits and
// some other participating goroutine Fires to release it. Fire may happen
// before Wait, and firing more than once is a no-op. (The single-waiter
// contract is what lets the simulated scheduler keep an exact runnable
// count.)
type Gate interface {
	Wait()
	Fire()
}

// ---------------------------------------------------------------------------
// Real clock

// realClock is the wall-clock implementation; scale compresses modeled
// time (NewReal is the scale-1 instance, so there is exactly one
// wall-clock type to keep correct).
type realClock struct {
	start time.Time
	scale float64
	wg    sync.WaitGroup
}

// NewReal returns a Clock backed by real wall-clock time.
func NewReal() Clock { return NewScaledReal(1) }

// NewScaledReal returns a wall-clock-backed Clock whose modeled time runs
// 1/scale times faster than real time: Sleep(d) sleeps d×scale of wall
// time and Now reports wall-elapsed/scale, so sleeps and timestamps stay
// mutually consistent. A 20-second scenario at scale 0.05 finishes in one
// real second — the knob the loopback-TCP deployment uses to compress
// modeled inference latencies, frame pacing, SLO deadlines, and the event
// timeline uniformly. scale ≤ 0 means 1 (real time).
func NewScaledReal(scale float64) Clock {
	if scale <= 0 {
		scale = 1
	}
	return &realClock{start: time.Now(), scale: scale}
}

func (c *realClock) Now() time.Duration {
	if c.scale == 1 {
		return time.Since(c.start)
	}
	return time.Duration(float64(time.Since(c.start)) / c.scale)
}

func (c *realClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.scale != 1 {
		d = time.Duration(float64(d) * c.scale)
	}
	time.Sleep(d)
}

func (c *realClock) NewGate() Gate {
	return &realGate{ch: make(chan struct{})}
}

func (c *realClock) Go(fn func()) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		fn()
	}()
}

func (c *realClock) Wait() { c.wg.Wait() }

type realGate struct {
	once sync.Once
	ch   chan struct{}
}

func (g *realGate) Wait() { <-g.ch }
func (g *realGate) Fire() { g.once.Do(func() { close(g.ch) }) }

// ---------------------------------------------------------------------------
// Simulated clock

// timerEvent is one pending Sleep wakeup. Events live by value inside a
// shard's heap slice, so pushing a timer allocates nothing.
type timerEvent struct {
	at  int64         // virtual wake time, ns
	seq uint64        // global tiebreak so equal-time events fire in creation order
	ch  chan struct{} // pooled wake channel, capacity 1
}

// timerShard is one slice of the timer queue with its own lock. The pad
// keeps hot shards on separate cache lines.
type timerShard struct {
	mu sync.Mutex
	h  []timerEvent // min-heap on (at, seq)
	_  [40]byte
}

func (s *timerShard) push(ev timerEvent) {
	h := append(s.h, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].at < h[i].at || (h[p].at == h[i].at && h[p].seq < h[i].seq) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	s.h = h
}

func (s *timerShard) popMin() timerEvent {
	h := s.h
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = timerEvent{}
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && (h[l].at < h[m].at || (h[l].at == h[m].at && h[l].seq < h[m].seq)) {
			m = l
		}
		if r < n && (h[r].at < h[m].at || (h[r].at == h[m].at && h[r].seq < h[m].seq)) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.h = h
	return min
}

// wakePool recycles the capacity-1 channels Sleep parks on: exactly one
// send per Sleep, so a drained channel is safe to reuse and the steady-state
// Sleep path allocates nothing.
var wakePool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// DefaultShards is the timer-shard count NewSim uses: enough to spread a
// fleet's sleepers across locks without making the per-barrier merge scan
// expensive.
const DefaultShards = 8

// Sim is a deterministic virtual-time scheduler. Construct with NewSim or
// NewSimSharded; the zero value is not usable.
//
// Invariant: runnable counts every goroutine that may be executing
// scheduler-visible code (participants not parked in a primitive, plus the
// driver's hold). Virtual time advances only on the transition to
// runnable == 0, at which point the transitioning goroutine is the only one
// active — advance therefore runs exclusively without a global lock, and
// Now is written only there (read anywhere via atomic load).
type Sim struct {
	now      atomic.Int64
	runnable atomic.Int64
	live     atomic.Int64
	seq      atomic.Uint64
	// occ is a bitmask of shards with pending timers (bit i ↔ shards[i]),
	// so advance only visits occupied heaps — with few concurrent sleepers
	// a wakeup touches one shard lock, not all of them. Bits are set under
	// the owning shard's lock (CAS; concurrent Sleeps race on different
	// bits) and cleared only inside advance, which runs exclusively.
	occ atomic.Uint64

	shards []timerShard
	mask   uint64

	stateMu  sync.Mutex // guards deadlock + waiters
	deadlock string
	waiters  []chan struct{}
}

// NewSim returns a virtual clock starting at time zero with DefaultShards
// timer shards. The driver holds an implicit runnable slot so that time
// cannot advance while it is still spawning participants; the slot is
// released for the duration of Wait.
func NewSim() *Sim { return NewSimSharded(DefaultShards) }

// NewSimSharded returns a virtual clock whose timer queue is split across
// nShards independently-locked heaps (rounded up to a power of two, min 1,
// max 64 — the occupancy bitmask is one word). The shard count is a pure
// contention knob: wake order — and therefore any simulation's output — is
// byte-identical for every value.
func NewSimSharded(nShards int) *Sim {
	n := 1
	for n < nShards && n < 64 {
		n <<= 1
	}
	s := &Sim{shards: make([]timerShard, n), mask: uint64(n - 1)}
	s.runnable.Store(1)
	return s
}

// Shards reports the timer-shard count.
func (s *Sim) Shards() int { return len(s.shards) }

// Now reports the current virtual time. It is a single atomic load — safe
// to call at arbitrary rates (trace timestamps, latency accounting) without
// touching any scheduler lock.
func (s *Sim) Now() time.Duration {
	return time.Duration(s.now.Load())
}

// Sleep blocks the calling goroutine for d of virtual time. The caller must
// be a participant started with Go. Non-positive durations return
// immediately.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	seq := s.seq.Add(1)
	ch := wakePool.Get().(chan struct{})
	ev := timerEvent{at: s.now.Load() + int64(d), seq: seq, ch: ch}
	idx := seq & s.mask
	sh := &s.shards[idx]
	sh.mu.Lock()
	if len(sh.h) == 0 {
		bit := uint64(1) << idx
		for {
			old := s.occ.Load()
			if old&bit != 0 || s.occ.CompareAndSwap(old, old|bit) {
				break
			}
		}
	}
	sh.push(ev)
	sh.mu.Unlock()
	s.block()
	<-ch
	wakePool.Put(ch)
}

// NewGate returns a Gate tied to this scheduler. Waiting counts the caller
// as blocked (allowing time to advance); firing makes it runnable again.
func (s *Sim) NewGate() Gate {
	return &simGate{s: s, ch: make(chan struct{})}
}

// Go starts fn as a participating goroutine. It may be called by the driver
// before or between Waits, or by a participant at any time.
func (s *Sim) Go(fn func()) {
	s.live.Add(1)
	s.runnable.Add(1)
	go func() {
		defer s.finish()
		fn()
	}()
}

// Wait parks the driver until every participant has returned, releasing the
// driver's hold so virtual time can advance. It panics if the simulation
// deadlocks (every participant blocked with no pending timer).
func (s *Sim) Wait() {
	s.stateMu.Lock()
	if s.deadlock != "" {
		msg := s.deadlock
		s.stateMu.Unlock()
		panic(msg)
	}
	if s.live.Load() == 0 {
		s.stateMu.Unlock()
		return
	}
	// Register for completion first: releasing the hold below can itself
	// detect a deadlock, and that notification must reach this waiter.
	ch := make(chan struct{})
	s.waiters = append(s.waiters, ch)
	s.stateMu.Unlock()
	s.block()
	<-ch

	s.stateMu.Lock()
	msg := s.deadlock
	s.stateMu.Unlock()
	if msg != "" {
		panic(msg)
	}
	s.runnable.Add(1) // re-acquire the driver's hold for the next phase
}

// Run is shorthand for Go(fn) followed by Wait.
func (s *Sim) Run(fn func()) {
	s.Go(fn)
	s.Wait()
}

func (s *Sim) finish() {
	l := s.live.Add(-1)
	n := s.runnable.Add(-1)
	if n < 0 {
		panic("vclock: runnable count underflow")
	}
	if l == 0 {
		s.notify()
		return
	}
	if n == 0 {
		s.advance()
	}
}

// block marks the caller as blocked and, if it was the last runnable
// goroutine, advances virtual time.
func (s *Sim) block() {
	n := s.runnable.Add(-1)
	if n < 0 {
		panic("vclock: runnable count underflow (blocking goroutine not started with Go?)")
	}
	if n == 0 && s.live.Load() > 0 {
		s.advance()
	}
}

// unblock marks one goroutine runnable again (wakeup by a peer).
func (s *Sim) unblock() {
	s.runnable.Add(1)
}

// advance pops the globally earliest (at, seq) timer event across all
// shards, moves the clock to it, and wakes its sleeper. The caller has just
// transitioned runnable to 0, so it is the only goroutine executing — the
// scan and pop are exclusive by construction (shard locks are taken anyway;
// they are uncontended here and keep the memory-order reasoning local). If
// no timer is pending the simulation is deadlocked: the condition is
// recorded and the driver is notified (its Wait panics).
func (s *Sim) advance() {
	best := -1
	var bestAt int64
	var bestSeq uint64
	for m := s.occ.Load(); m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		sh := &s.shards[i]
		sh.mu.Lock()
		if len(sh.h) > 0 {
			ev := &sh.h[0]
			if best < 0 || ev.at < bestAt || (ev.at == bestAt && ev.seq < bestSeq) {
				best, bestAt, bestSeq = i, ev.at, ev.seq
			}
		}
		sh.mu.Unlock()
	}
	if best < 0 {
		s.stateMu.Lock()
		s.deadlock = fmt.Sprintf("vclock: deadlock at t=%v — all %d live goroutines blocked with no pending timer", time.Duration(s.now.Load()), s.live.Load())
		s.stateMu.Unlock()
		s.notify()
		return
	}
	sh := &s.shards[best]
	sh.mu.Lock()
	ev := sh.popMin()
	if len(sh.h) == 0 {
		s.occ.Store(s.occ.Load() &^ (uint64(1) << best))
	}
	sh.mu.Unlock()
	if ev.at > s.now.Load() {
		s.now.Store(ev.at)
	}
	s.runnable.Add(1)
	ev.ch <- struct{}{}
}

func (s *Sim) notify() {
	s.stateMu.Lock()
	ws := s.waiters
	s.waiters = nil
	s.stateMu.Unlock()
	for _, ch := range ws {
		close(ch)
	}
}

type simGate struct {
	s       *Sim
	mu      sync.Mutex
	fired   bool
	waiting bool
	ch      chan struct{}
}

// Wait blocks until the gate fires, letting virtual time advance meanwhile.
// If the gate already fired, Wait returns immediately without touching the
// scheduler's runnable accounting.
func (g *simGate) Wait() {
	g.mu.Lock()
	if g.fired {
		g.mu.Unlock()
		return
	}
	g.waiting = true
	g.mu.Unlock()
	g.s.block()
	<-g.ch
}

// Fire wakes the waiter. Safe to call before Wait and more than once; the
// runnable count is only credited when a waiter actually blocked (or is
// about to block), keeping the scheduler's accounting exact.
func (g *simGate) Fire() {
	g.mu.Lock()
	if g.fired {
		g.mu.Unlock()
		return
	}
	g.fired = true
	waiting := g.waiting
	g.mu.Unlock()
	if waiting {
		g.s.unblock()
	}
	close(g.ch)
}
