// Package vclock provides a clock abstraction with two implementations: a
// real-time clock backed by the time package, and a deterministic
// virtual-time scheduler (Sim) in which sleeping for simulated seconds costs
// microseconds of wall time.
//
// The virtual scheduler is cooperative: every goroutine that participates in
// simulated time must be started with Go (or Run), and may block only
// through scheduler-aware primitives — Sleep, Gate, or Semaphore. A single
// external driver goroutine (typically a test or main) creates the Sim,
// spawns participants with Go, and calls Wait; virtual time advances only
// while the driver is parked in Wait and every participant is blocked. If
// every participant is blocked on a gate with no pending timer, the
// simulation has deadlocked and Wait panics with a diagnostic instead of
// hanging.
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is the time source used throughout the Croesus code base. Both the
// in-process simulation (Sim) and the real deployment (Real) satisfy it, so
// node logic is written once and runs in either mode.
type Clock interface {
	// Now reports the elapsed time since the clock was created.
	Now() time.Duration
	// Sleep pauses the calling goroutine for d. On Sim, the caller must
	// have been started with Go.
	Sleep(d time.Duration)
	// NewGate returns a one-shot wakeup primitive usable with this clock.
	NewGate() Gate
	// Go starts fn on a new goroutine tracked by the clock.
	Go(fn func())
	// Wait blocks until every goroutine started with Go has returned.
	Wait()
}

// Gate is a one-shot synchronization point: exactly one goroutine Waits and
// some other participating goroutine Fires to release it. Fire may happen
// before Wait, and firing more than once is a no-op. (The single-waiter
// contract is what lets the simulated scheduler keep an exact runnable
// count.)
type Gate interface {
	Wait()
	Fire()
}

// ---------------------------------------------------------------------------
// Real clock

// realClock is the wall-clock implementation; scale compresses modeled
// time (NewReal is the scale-1 instance, so there is exactly one
// wall-clock type to keep correct).
type realClock struct {
	start time.Time
	scale float64
	wg    sync.WaitGroup
}

// NewReal returns a Clock backed by real wall-clock time.
func NewReal() Clock { return NewScaledReal(1) }

// NewScaledReal returns a wall-clock-backed Clock whose modeled time runs
// 1/scale times faster than real time: Sleep(d) sleeps d×scale of wall
// time and Now reports wall-elapsed/scale, so sleeps and timestamps stay
// mutually consistent. A 20-second scenario at scale 0.05 finishes in one
// real second — the knob the loopback-TCP deployment uses to compress
// modeled inference latencies, frame pacing, SLO deadlines, and the event
// timeline uniformly. scale ≤ 0 means 1 (real time).
func NewScaledReal(scale float64) Clock {
	if scale <= 0 {
		scale = 1
	}
	return &realClock{start: time.Now(), scale: scale}
}

func (c *realClock) Now() time.Duration {
	if c.scale == 1 {
		return time.Since(c.start)
	}
	return time.Duration(float64(time.Since(c.start)) / c.scale)
}

func (c *realClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.scale != 1 {
		d = time.Duration(float64(d) * c.scale)
	}
	time.Sleep(d)
}

func (c *realClock) NewGate() Gate {
	return &realGate{ch: make(chan struct{})}
}

func (c *realClock) Go(fn func()) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		fn()
	}()
}

func (c *realClock) Wait() { c.wg.Wait() }

type realGate struct {
	once sync.Once
	ch   chan struct{}
}

func (g *realGate) Wait() { <-g.ch }
func (g *realGate) Fire() { g.once.Do(func() { close(g.ch) }) }

// ---------------------------------------------------------------------------
// Simulated clock

// Sim is a deterministic virtual-time scheduler. Construct with NewSim; the
// zero value is not usable.
type Sim struct {
	mu       sync.Mutex
	now      time.Duration
	runnable int // participants not blocked in a primitive, plus the driver's hold
	live     int // participants that have not returned
	events   eventHeap
	seq      uint64 // tiebreak so equal-time events fire in creation order
	deadlock string // non-empty once a deadlock has been detected
	waiters  []chan struct{}
}

// NewSim returns a virtual clock starting at time zero. The driver holds an
// implicit runnable slot so that time cannot advance while it is still
// spawning participants; the slot is released for the duration of Wait.
func NewSim() *Sim { return &Sim{runnable: 1} }

// Now reports the current virtual time.
func (s *Sim) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep blocks the calling goroutine for d of virtual time. The caller must
// be a participant started with Go. Non-positive durations return
// immediately.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	g := &simGate{s: s, ch: make(chan struct{})}
	s.mu.Lock()
	s.seq++
	heap.Push(&s.events, &event{at: s.now + d, seq: s.seq, gate: g})
	s.blockLocked()
	s.mu.Unlock()
	<-g.ch
}

// NewGate returns a Gate tied to this scheduler. Waiting counts the caller
// as blocked (allowing time to advance); firing makes it runnable again.
func (s *Sim) NewGate() Gate {
	return &simGate{s: s, ch: make(chan struct{})}
}

// Go starts fn as a participating goroutine. It may be called by the driver
// before or between Waits, or by a participant at any time.
func (s *Sim) Go(fn func()) {
	s.mu.Lock()
	s.runnable++
	s.live++
	s.mu.Unlock()
	go func() {
		defer s.finish()
		fn()
	}()
}

// Wait parks the driver until every participant has returned, releasing the
// driver's hold so virtual time can advance. It panics if the simulation
// deadlocks (every participant blocked with no pending timer).
func (s *Sim) Wait() {
	s.mu.Lock()
	if s.deadlock != "" {
		msg := s.deadlock
		s.mu.Unlock()
		panic(msg)
	}
	if s.live == 0 {
		s.mu.Unlock()
		return
	}
	// Register for completion first: releasing the hold below can itself
	// detect a deadlock, and that notification must reach this waiter.
	ch := make(chan struct{})
	s.waiters = append(s.waiters, ch)
	s.blockLocked()
	s.mu.Unlock()
	<-ch

	s.mu.Lock()
	msg := s.deadlock
	if msg == "" {
		s.runnable++ // re-acquire the driver's hold for the next phase
	}
	s.mu.Unlock()
	if msg != "" {
		panic(msg)
	}
}

// Run is shorthand for Go(fn) followed by Wait.
func (s *Sim) Run(fn func()) {
	s.Go(fn)
	s.Wait()
}

func (s *Sim) finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live--
	s.runnable--
	if s.runnable < 0 {
		panic("vclock: runnable count underflow")
	}
	if s.live == 0 {
		s.notifyLocked()
		return
	}
	if s.runnable == 0 {
		s.advanceLocked()
	}
}

// blockLocked marks the caller as blocked and, if it was the last runnable
// goroutine, advances virtual time. Callers hold s.mu.
func (s *Sim) blockLocked() {
	s.runnable--
	if s.runnable < 0 {
		panic("vclock: runnable count underflow (blocking goroutine not started with Go?)")
	}
	if s.runnable == 0 && s.live > 0 {
		s.advanceLocked()
	}
}

// unblock marks one goroutine runnable again (wakeup by a peer).
func (s *Sim) unblock() {
	s.mu.Lock()
	s.runnable++
	s.mu.Unlock()
}

// advanceLocked pops the earliest timer event, moves the clock to it, and
// wakes its sleeper. If no timer is pending the simulation is deadlocked:
// the condition is recorded and the driver is notified (its Wait panics).
// Callers hold s.mu.
func (s *Sim) advanceLocked() {
	if s.events.Len() == 0 {
		s.deadlock = fmt.Sprintf("vclock: deadlock at t=%v — all %d live goroutines blocked with no pending timer", s.now, s.live)
		s.notifyLocked()
		return
	}
	ev := heap.Pop(&s.events).(*event)
	if ev.at > s.now {
		s.now = ev.at
	}
	s.runnable++
	ev.gate.fire()
}

func (s *Sim) notifyLocked() {
	for _, ch := range s.waiters {
		close(ch)
	}
	s.waiters = nil
}

type simGate struct {
	s       *Sim
	mu      sync.Mutex
	fired   bool
	waiting bool
	ch      chan struct{}
}

// Wait blocks until the gate fires, letting virtual time advance meanwhile.
// If the gate already fired, Wait returns immediately without touching the
// scheduler's runnable accounting.
func (g *simGate) Wait() {
	g.mu.Lock()
	if g.fired {
		g.mu.Unlock()
		return
	}
	g.waiting = true
	g.mu.Unlock()
	g.s.mu.Lock()
	g.s.blockLocked()
	g.s.mu.Unlock()
	<-g.ch
}

// Fire wakes the waiter. Safe to call before Wait and more than once; the
// runnable count is only credited when a waiter actually blocked (or is
// about to block), keeping the scheduler's accounting exact.
func (g *simGate) Fire() {
	g.mu.Lock()
	if g.fired {
		g.mu.Unlock()
		return
	}
	g.fired = true
	waiting := g.waiting
	g.mu.Unlock()
	if waiting {
		g.s.unblock()
	}
	close(g.ch)
}

// fire is the scheduler-internal wakeup used for timer events: advanceLocked
// already credited the runnable count, so only the channel is closed.
func (g *simGate) fire() {
	g.mu.Lock()
	if g.fired {
		g.mu.Unlock()
		return
	}
	g.fired = true
	g.mu.Unlock()
	close(g.ch)
}

type event struct {
	at   time.Duration
	seq  uint64
	gate *simGate
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
