package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"croesus/internal/lock"
)

func TestDetectionOpsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := DetectionOps(rng, Uniform{Prefix: "k", N: 100}, 6)
	if len(ops) != 6 {
		t.Fatalf("len = %d", len(ops))
	}
	inserts, reads := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			inserts++
		case OpRead:
			reads++
		}
		if !strings.HasPrefix(op.Key, "k:") {
			t.Errorf("key %q missing prefix", op.Key)
		}
	}
	if inserts != 3 || reads != 3 {
		t.Errorf("inserts=%d reads=%d, want 3/3 (YCSB-A half/half)", inserts, reads)
	}
}

func TestHotSpotSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := HotSpot{Prefix: "k", N: 10000, Hot: 10, HotProb: 0.9}
	hot := 0
	const n = 5000
	for i := 0; i < n; i++ {
		key := h.Pick(rng)
		var id int
		if _, err := fscanKey(key, &id); err != nil {
			t.Fatalf("bad key %q", key)
		}
		if id < 10 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("hot fraction = %.3f, want ≈ 0.9", frac)
	}
}

func fscanKey(key string, id *int) (int, error) {
	i := strings.LastIndexByte(key, ':')
	var err error
	*id, err = atoi(key[i+1:])
	return 1, err
}

func atoi(s string) (int, error) {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n, nil
}

func TestShardKeyRoundTrip(t *testing.T) {
	for _, shard := range []int{0, 3, 12, 107} {
		k := ShardKey(shard, "item", 42)
		got, ok := ShardOf(k)
		if !ok || got != shard {
			t.Errorf("ShardOf(%q) = %d %v, want %d", k, got, ok, shard)
		}
	}
	for _, k := range []string{"item:3", "s:item:3", "sx/item:1", "s", "", "s12"} {
		if _, ok := ShardOf(k); ok {
			t.Errorf("ShardOf(%q) parsed an unsharded key", k)
		}
	}
}

func TestShardedUniformAffinity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := ShardedUniform{Prefix: "item", Home: 1, Shards: 4, N: 100, CrossProb: 0.3}
	const n = 5000
	home, cross := 0, 0
	for i := 0; i < n; i++ {
		shard, ok := ShardOf(s.Pick(rng))
		if !ok || shard < 0 || shard >= 4 {
			t.Fatalf("bad shard %d", shard)
		}
		if shard == 1 {
			home++
		} else {
			cross++
		}
	}
	frac := float64(cross) / n
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("cross-shard fraction = %.3f, want ≈ 0.3", frac)
	}
	// CrossProb 0 stays entirely home.
	s.CrossProb = 0
	for i := 0; i < 200; i++ {
		if shard, _ := ShardOf(s.Pick(rng)); shard != 1 {
			t.Fatalf("CrossProb 0 picked foreign shard %d", shard)
		}
	}
}

func TestZipfConcentration(t *testing.T) {
	z := NewZipf("k", 1000, 1.3, 3)
	rng := rand.New(rand.NewSource(4))
	counts := map[string]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[z.Pick(rng)]++
	}
	if counts["k:0"] < n/20 {
		t.Errorf("zipf head k:0 only %d/%d picks — not skewed", counts["k:0"], n)
	}
}

func TestLockRequests(t *testing.T) {
	ops := []Op{
		{OpRead, "a"}, {OpInsert, "a"}, {OpRead, "b"}, {OpInsert, "c"},
	}
	reqs := LockRequests(ops)
	want := map[string]lock.Mode{"a": lock.Exclusive, "b": lock.Shared, "c": lock.Exclusive}
	if len(reqs) != 3 {
		t.Fatalf("reqs = %v", reqs)
	}
	for _, r := range reqs {
		if want[r.Key] != r.Mode {
			t.Errorf("key %q mode %v, want %v", r.Key, r.Mode, want[r.Key])
		}
	}
}

func TestMakeBatchesShape(t *testing.T) {
	batches := MakeBatches(7, 4, 50, 1000, 5)
	if len(batches) != 4 {
		t.Fatalf("batches = %d", len(batches))
	}
	for _, b := range batches {
		if len(b.Bodies) != 50 {
			t.Fatalf("batch size = %d", len(b.Bodies))
		}
		for _, body := range b.Bodies {
			if len(body) != 5 {
				t.Fatalf("ops per txn = %d", len(body))
			}
			for _, op := range body {
				if op.Kind != OpInsert {
					t.Fatal("hot-spot bodies must be updates")
				}
			}
		}
	}
}

func TestMakeBatchesDeterministic(t *testing.T) {
	a := MakeBatches(9, 2, 10, 100, 5)
	b := MakeBatches(9, 2, 10, 100, 5)
	for i := range a {
		for j := range a[i].Bodies {
			for k := range a[i].Bodies[j] {
				if a[i].Bodies[j][k] != b[i].Bodies[j][k] {
					t.Fatal("batches differ across identical seeds")
				}
			}
		}
	}
}

func TestConflicts(t *testing.T) {
	w := []Op{{OpInsert, "x"}}
	r := []Op{{OpRead, "x"}}
	r2 := []Op{{OpRead, "y"}}
	if !Conflicts(w, r) || !Conflicts(r, w) {
		t.Error("write-read on same key must conflict")
	}
	if Conflicts(r, r) {
		t.Error("read-read must not conflict")
	}
	if Conflicts(w, r2) {
		t.Error("disjoint keys must not conflict")
	}
	if !Conflicts(w, w) {
		t.Error("write-write must conflict")
	}
}

// Property: Conflicts is symmetric.
func TestConflictsSymmetryProperty(t *testing.T) {
	gen := func(raw []uint8) []Op {
		var ops []Op
		for i := 0; i+1 < len(raw) && len(ops) < 8; i += 2 {
			kind := OpRead
			if raw[i]%2 == 0 {
				kind = OpInsert
			}
			ops = append(ops, Op{kind, string(rune('a' + raw[i+1]%6))})
		}
		return ops
	}
	f := func(ra, rb []uint8) bool {
		a, b := gen(ra), gen(rb)
		return Conflicts(a, b) == Conflicts(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Regression: rand.NewZipf returns nil for s <= 1 or n < 2, which made the
// first Pick a nil-pointer panic before NewZipf clamped its parameters.
func TestZipfClampsInvalidParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n int
		s float64
	}{
		{1, 0.5},    // both invalid
		{1, 1.3},    // n too small
		{1000, 1.0}, // s at the open bound
		{1000, -2},  // s nonsense
		{0, 0},
	} {
		z := NewZipf("k", tc.n, tc.s, 3)
		for i := 0; i < 50; i++ {
			key := z.Pick(rng) // must not panic
			if key == "" {
				t.Fatalf("NewZipf(n=%d, s=%g): empty key", tc.n, tc.s)
			}
		}
	}
}

// ShardedZipf mirrors TestZipfConcentration on the sharded keyspace: the
// home shard's head key dominates, and the cross-shard fraction tracks
// CrossProb.
func TestShardedZipfConcentration(t *testing.T) {
	z := NewShardedZipf("k", 1, 3, 1000, 0.3, 1.3, 3)
	rng := rand.New(rand.NewSource(4))
	counts := map[string]int{}
	cross := 0
	const n = 5000
	for i := 0; i < n; i++ {
		key := z.Pick(rng)
		counts[key]++
		shard, ok := ShardOf(key)
		if !ok {
			t.Fatalf("key %q has no shard tag", key)
		}
		if shard != 1 {
			cross++
		}
	}
	// The head key of the home shard alone must concentrate picks the way
	// the unsharded Zipf's head does, scaled by the home fraction.
	if head := counts[ShardKey(1, "k", 0)]; head < n/30 {
		t.Errorf("home head key only %d/%d picks — not skewed", head, n)
	}
	frac := float64(cross) / n
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("cross-shard fraction = %.3f, want ≈ 0.3", frac)
	}
	// Remote picks are skewed too: the two foreign heads lead the tail.
	if head := counts[ShardKey(0, "k", 0)] + counts[ShardKey(2, "k", 0)]; head < n/100 {
		t.Errorf("foreign head keys only %d/%d picks", head, n)
	}
}
