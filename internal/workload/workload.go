// Package workload generates the database operations behind the paper's
// experiments: the YCSB-Workload-A-style transaction bodies attached to each
// detection ("6 operations, half of these mutate the state of the database
// by inserting data items, and the other half read from previously added
// items"), and the hot-spot update batches of the Figure 6(b) contention
// experiment.
package workload

import (
	"math/rand"
	"strconv"

	"croesus/internal/lock"
	"croesus/internal/store"
)

// OpKind distinguishes reads from writes.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpInsert
)

// Op is one database operation.
type Op struct {
	Kind OpKind
	Key  string
}

// KeyChooser picks keys from a key space.
type KeyChooser interface {
	Pick(rng *rand.Rand) string
}

// Uniform picks uniformly from [0, N).
type Uniform struct {
	Prefix string
	N      int
}

// Pick returns a uniformly random key.
func (u Uniform) Pick(rng *rand.Rand) string {
	return store.ItoaKey(u.Prefix, rng.Intn(u.N))
}

// HotSpot picks from a small hot range with probability HotProb, otherwise
// from the full range.
type HotSpot struct {
	Prefix  string
	N       int // total keys
	Hot     int // hot keys (first Hot of N)
	HotProb float64
}

// Pick returns a hot-spot-skewed key.
func (h HotSpot) Pick(rng *rand.Rand) string {
	if rng.Float64() < h.HotProb {
		return store.ItoaKey(h.Prefix, rng.Intn(h.Hot))
	}
	return store.ItoaKey(h.Prefix, rng.Intn(h.N))
}

// ShardKey builds the fleet-wide sharded key "s<shard>/<prefix>:<i>". The
// shard tag makes key ownership syntactic, so the cluster's
// placement-aware partitioner routes without a directory lookup.
func ShardKey(shard int, prefix string, i int) string {
	return "s" + strconv.Itoa(shard) + "/" + store.ItoaKey(prefix, i)
}

// ShardOf parses the owning shard of a sharded key; ok is false for keys
// without a shard tag.
func ShardOf(key string) (shard int, ok bool) {
	if len(key) < 3 || key[0] != 's' {
		return 0, false
	}
	i := 1
	for i < len(key) && key[i] >= '0' && key[i] <= '9' {
		shard = shard*10 + int(key[i]-'0')
		i++
	}
	if i == 1 || i >= len(key) || key[i] != '/' {
		return 0, false
	}
	return shard, true
}

// ShardedUniform picks keys from a fleet-wide keyspace of Shards shards
// with N keys each: with probability CrossProb the key belongs to a
// uniformly random *other* shard (a cross-edge access), otherwise to the
// Home shard — the workload knob behind the cluster's CrossEdgeFraction.
type ShardedUniform struct {
	Prefix    string
	Home      int
	Shards    int
	N         int
	CrossProb float64
}

// Pick returns a sharded key, remote with probability CrossProb.
func (s ShardedUniform) Pick(rng *rand.Rand) string {
	shard := s.Home
	if s.Shards > 1 && rng.Float64() < s.CrossProb {
		shard = rng.Intn(s.Shards - 1)
		if shard >= s.Home {
			shard++
		}
	}
	return ShardKey(shard, s.Prefix, rng.Intn(s.N))
}

// Zipf picks with a Zipfian distribution (YCSB's default skew).
type Zipf struct {
	Prefix string
	zipf   *rand.Zipf
}

// NewZipf returns a Zipfian chooser over n keys with exponent s > 1.
// Out-of-contract parameters are clamped into validity (n to at least 2,
// s to just above 1) rather than handed to rand.NewZipf, which returns nil
// for them and would turn the first Pick into a panic.
func NewZipf(prefix string, n int, s float64, seed int64) *Zipf {
	if n < 2 {
		n = 2
	}
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{Prefix: prefix, zipf: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Pick returns a Zipf-distributed key. The embedded source makes this
// chooser stateful; use one per goroutine.
func (z *Zipf) Pick(rng *rand.Rand) string {
	return store.ItoaKey(z.Prefix, z.PickIndex())
}

// PickIndex returns a Zipf-distributed key index in [0, n).
func (z *Zipf) PickIndex() int { return int(z.zipf.Uint64()) }

// ShardedZipf composes Zipf with the sharded fleet keyspace: key indexes
// are Zipf-skewed (so every shard has its own hot head, and cross-edge
// traffic concentrates on remote hot keys — the hot-shard stress the
// sharded experiments need), while the owning shard is chosen like
// ShardedUniform — Home, or a uniformly random other shard with
// probability CrossProb.
type ShardedZipf struct {
	Prefix    string
	Home      int
	Shards    int
	CrossProb float64
	zipf      *Zipf
}

// NewShardedZipf returns a sharded Zipf chooser over n keys per shard with
// exponent s > 1 (clamped like NewZipf).
func NewShardedZipf(prefix string, home, shards, n int, crossProb, s float64, seed int64) *ShardedZipf {
	return &ShardedZipf{
		Prefix:    prefix,
		Home:      home,
		Shards:    shards,
		CrossProb: crossProb,
		zipf:      NewZipf(prefix, n, s, seed),
	}
}

// Pick returns a sharded, Zipf-skewed key: remote with probability
// CrossProb, index skewed toward each shard's head.
func (s *ShardedZipf) Pick(rng *rand.Rand) string {
	shard := s.Home
	if s.Shards > 1 && rng.Float64() < s.CrossProb {
		shard = rng.Intn(s.Shards - 1)
		if shard >= s.Home {
			shard++
		}
	}
	return ShardKey(shard, s.Prefix, s.zipf.PickIndex())
}

// DetectionOps builds the paper's per-detection transaction body: nOps
// operations, half inserts and half reads, on keys drawn from the chooser.
func DetectionOps(rng *rand.Rand, chooser KeyChooser, nOps int) []Op {
	ops := make([]Op, nOps)
	for i := range ops {
		kind := OpInsert
		if i%2 == 1 {
			kind = OpRead
		}
		ops[i] = Op{Kind: kind, Key: chooser.Pick(rng)}
	}
	return ops
}

// UpdateOps builds the Figure 6(b) hot-spot body: nOps update operations on
// keys drawn uniformly from [0, keyRange).
func UpdateOps(rng *rand.Rand, prefix string, keyRange, nOps int) []Op {
	ops := make([]Op, nOps)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Key: store.ItoaKey(prefix, rng.Intn(keyRange))}
	}
	return ops
}

// LockRequests converts operations to lock requests: reads take shared
// locks, inserts exclusive. Duplicates are merged by lock.Normalize.
func LockRequests(ops []Op) []lock.Request {
	reqs := make([]lock.Request, len(ops))
	for i, op := range ops {
		mode := lock.Shared
		if op.Kind == OpInsert {
			mode = lock.Exclusive
		}
		reqs[i] = lock.Request{Key: op.Key, Mode: mode}
	}
	return lock.Normalize(reqs)
}

// Batch is a group of transaction bodies executed together, as in the
// Figure 6(b) experiment ("transactions are executed in batches of 50
// transactions per batch where each transaction has 5 update operations").
type Batch struct {
	Bodies [][]Op
}

// MakeBatches generates nBatches batches of batchSize transactions, each
// with opsPerTxn updates over keyRange keys.
func MakeBatches(seed int64, nBatches, batchSize, keyRange, opsPerTxn int) []Batch {
	rng := rand.New(rand.NewSource(seed))
	batches := make([]Batch, nBatches)
	for b := range batches {
		bodies := make([][]Op, batchSize)
		for i := range bodies {
			bodies[i] = UpdateOps(rng, "hot", keyRange, opsPerTxn)
		}
		batches[b] = Batch{Bodies: bodies}
	}
	return batches
}

// Conflicts reports whether two bodies touch a common key with at least one
// write — the conflict definition of the multi-stage model (§4.1).
func Conflicts(a, b []Op) bool {
	writesA := map[string]bool{}
	readsA := map[string]bool{}
	for _, op := range a {
		if op.Kind == OpInsert {
			writesA[op.Key] = true
		} else {
			readsA[op.Key] = true
		}
	}
	for _, op := range b {
		if writesA[op.Key] {
			return true
		}
		if op.Kind == OpInsert && readsA[op.Key] {
			return true
		}
	}
	return false
}
