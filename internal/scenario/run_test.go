package scenario

import (
	"strings"
	"testing"
	"time"

	"croesus/internal/vclock"
	"croesus/internal/workload"
)

// migrateAndCrash is the acceptance scenario: a camera migrates between
// edges mid-run while a fault plan is active (an edge crash with WAL
// recovery and a participant 2PC crash), with cross-edge traffic on.
func migrateAndCrash() *Scenario {
	return &Scenario{
		Version: 1,
		Name:    "migrate-under-faults",
		Seed:    11,
		Topology: Topology{
			Edges: []Edge{{ID: "north"}, {ID: "mid"}, {ID: "south", Speed: 0.7}},
			Cameras: []Camera{
				{ID: "cam0", Profile: "street-vehicles", Edge: "north", Frames: 50},
				{ID: "cam1", Profile: "park-dog", Edge: "mid", Frames: 50},
				{ID: "cam2", Profile: "mall-person", Edge: "south", Frames: 50},
			},
			CrossEdgeFraction: 0.3,
			Batcher:           Batcher{MaxBatch: 8, SLO: Duration(80 * time.Millisecond)},
		},
		Timeline: []Event{
			{At: Duration(4 * time.Second), Do: KindEdgeCrash, Edge: "mid", RestartAfter: Duration(2 * time.Second)},
			{At: Duration(6 * time.Second), Do: KindTwoPCCrash, Edge: "south", Point: PointParticipantPrepared, Round: 1, RestartAfter: Duration(time.Second)},
			{At: Duration(10 * time.Second), Do: KindMigrateCamera, Camera: "cam0", To: "south"},
			{At: Duration(15 * time.Second), Do: KindLinkFault, A: "north", B: "mid", Heal: Duration(16 * time.Second)},
		},
	}
}

// TestMigrationUnderFaultsAcceptance is the PR's acceptance bar: the
// migrate-under-faults scenario completes with zero half-committed
// transactions and replays byte-identically under the same seed.
func TestMigrationUnderFaultsAcceptance(t *testing.T) {
	run := func() (format string, migrations, migratedKeys int) {
		rt, err := New(migrateAndCrash(), vclock.NewSim())
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Cluster.Close()
		rep := rt.Run()
		if err := rt.Cluster.Injector().VerifyDurability(); err != nil {
			t.Fatalf("durability broken after migration under faults: %v", err)
		}
		if rep.Dynamic == nil {
			t.Fatal("scenario run produced no dynamic report")
		}
		return rep.Format(), rep.Dynamic.Migrations, rep.Dynamic.MigratedKeys
	}
	f1, migs, keys := run()
	f2, _, _ := run()
	if f1 != f2 {
		t.Fatalf("scenario replay diverged:\n--- run 1\n%s\n--- run 2\n%s", f1, f2)
	}
	if migs != 1 {
		t.Fatalf("expected 1 completed migration, got %d", migs)
	}
	if keys == 0 {
		t.Fatal("migration moved no keys; the handoff test is vacuous")
	}
}

// TestMigrationInvariants checks the handoff itself: after the run, every
// key of the migrated camera's shard lives on the destination partition,
// none on the source, and the map routes the shard to the destination —
// no key lost, duplicated, or served by two epochs at once.
func TestMigrationInvariants(t *testing.T) {
	rt, err := New(migrateAndCrash(), vclock.NewSim())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Cluster.Close()
	rep := rt.Run()
	if rep.Frames == 0 {
		t.Fatal("no frames ran")
	}

	smap := rt.Cluster.ShardMap()
	shard := rt.idx["cam0"]
	destIdx, err2 := rt.Cluster.Edges()[0], error(nil)
	_ = destIdx
	_ = err2
	if got := smap.Owner(shard); got != 2 {
		t.Fatalf("shard %d owned by partition %d after migration to south (2)", shard, got)
	}
	counts := map[string]int{}
	for i, e := range rt.Cluster.Edges() {
		for k := range e.Partition.Store.Snapshot() {
			s, ok := workload.ShardOf(k)
			if !ok || s != shard {
				continue
			}
			counts[k]++
			if i != 2 {
				t.Errorf("shard-%d key %q still served by partition %d after migration", shard, k, i)
			}
		}
	}
	if len(counts) == 0 {
		t.Fatal("migrated shard holds no keys; the invariant check is vacuous")
	}
	for k, n := range counts {
		if n != 1 {
			t.Errorf("key %q present on %d partitions", k, n)
		}
	}
	if smap.Epoch() == 0 {
		t.Error("shard map epoch never advanced across a migration")
	}
}

// TestCheckpointBoundsReplay is the ROADMAP satellite: a checkpoint before
// a crash must make recovery replay fewer WAL records than the same run
// without one.
func TestCheckpointBoundsReplay(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Version: 1,
			Seed:    5,
			Topology: Topology{
				Edges: []Edge{{ID: "a"}, {ID: "b"}},
				Cameras: []Camera{
					{ID: "cam0", Profile: "street-vehicles", Edge: "a", Frames: 40},
					{ID: "cam1", Profile: "park-dog", Edge: "b", Frames: 40},
				},
				CrossEdgeFraction: 0.25,
				Durable:           true,
				Batcher:           Batcher{MaxBatch: 8, SLO: Duration(80 * time.Millisecond)},
			},
			Timeline: []Event{
				{At: Duration(12 * time.Second), Do: KindEdgeCrash, Edge: "a", RestartAfter: Duration(2 * time.Second)},
			},
		}
	}
	plain := base()
	rep1, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := base()
	ckpt.Timeline = append([]Event{{At: Duration(10 * time.Second), Do: KindCheckpoint}}, ckpt.Timeline...)
	rep2, err := Run(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Faults.Checkpoints == 0 {
		t.Fatal("checkpoint event never checkpointed")
	}
	if rep1.Faults.ReplayedRecords == 0 {
		t.Fatal("uncheckpointed crash replayed nothing; the comparison is vacuous")
	}
	if rep2.Faults.ReplayedRecords >= rep1.Faults.ReplayedRecords {
		t.Fatalf("checkpoint did not bound replay: %d records with checkpoint vs %d without",
			rep2.Faults.ReplayedRecords, rep1.Faults.ReplayedRecords)
	}
	if err := vDur(t, ckpt); err != nil {
		t.Fatalf("durability broken after checkpointed crash: %v", err)
	}
}

// vDur reruns a scenario keeping the cluster open and verifies durability.
func vDur(t *testing.T, s *Scenario) error {
	t.Helper()
	rt, err := New(s, vclock.NewSim())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Cluster.Close()
	rt.Run()
	return rt.Cluster.Injector().VerifyDurability()
}

// TestPeriodicCheckpointTicker exercises Topology.CheckpointEvery.
func TestPeriodicCheckpointTicker(t *testing.T) {
	s := &Scenario{
		Version: 1,
		Seed:    5,
		Topology: Topology{
			Edges:           []Edge{{ID: "a"}, {ID: "b"}},
			Cameras:         []Camera{{ID: "cam0", Profile: "street-vehicles", Edge: "a", Frames: 30}, {ID: "cam1", Profile: "park-dog", Edge: "b", Frames: 30}},
			CheckpointEvery: Duration(5 * time.Second),
			Batcher:         Batcher{MaxBatch: 8, SLO: Duration(80 * time.Millisecond)},
		},
	}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == nil || rep.Faults.Checkpoints == 0 {
		t.Fatalf("periodic ticker never checkpointed: %+v", rep.Faults)
	}
}

// TestUnshardedTimelineFaults: edge crashes and cloud-uplink partitions on
// a fleet without the sharded machinery — frames drop while the edge is
// dark, lost validations finalize locally, and the run stays deterministic.
func TestUnshardedTimelineFaults(t *testing.T) {
	s := &Scenario{
		Version: 1,
		Seed:    9,
		Topology: Topology{
			Edges: []Edge{{ID: "a"}, {ID: "b"}},
			Cameras: []Camera{
				{ID: "cam0", Profile: "street-vehicles", Edge: "a", Frames: 60},
				{ID: "cam1", Profile: "park-dog", Edge: "b", Frames: 60},
			},
			Batcher: Batcher{MaxBatch: 8, SLO: Duration(80 * time.Millisecond)},
		},
		Timeline: []Event{
			{At: Duration(5 * time.Second), Do: KindEdgeCrash, Edge: "a", RestartAfter: Duration(5 * time.Second)},
			{At: Duration(20 * time.Second), Do: KindLinkFault, A: "b", B: "cloud", Heal: Duration(24 * time.Second)},
		},
	}
	run := func() (*Scenario, string) {
		sc := &Scenario{}
		*sc = *s
		rep, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sharded {
			t.Fatal("unsharded scenario ran sharded")
		}
		d := rep.Dynamic
		if d == nil {
			t.Fatal("no dynamic report")
		}
		if d.EdgeOutages != 1 || d.OutageRestores != 1 {
			t.Fatalf("outage accounting: %+v", d)
		}
		if d.FramesDropped == 0 {
			t.Fatal("edge outage dropped no frames")
		}
		if d.CloudLinkOutages != 1 {
			t.Fatalf("cloud link outage not counted: %+v", d)
		}
		if rep.Lost == 0 {
			t.Fatal("cloud-uplink partition lost no validations")
		}
		return sc, rep.Format()
	}
	_, f1 := run()
	_, f2 := run()
	if f1 != f2 {
		t.Fatalf("unsharded faulty run diverged:\n%s\nvs\n%s", f1, f2)
	}
}

// TestJoinLeaveAndShift drives membership churn and a workload shift.
func TestJoinLeaveAndShift(t *testing.T) {
	zero, half := 0.0, 0.5
	s := &Scenario{
		Version: 1,
		Seed:    13,
		Topology: Topology{
			Edges: []Edge{{ID: "a"}, {ID: "b"}},
			Cameras: []Camera{
				{ID: "cam0", Profile: "street-vehicles", Edge: "a", Frames: 50},
				{ID: "cam1", Profile: "park-dog", Edge: "b", Frames: 50},
			},
			Sharded: true,
			Batcher: Batcher{MaxBatch: 8, SLO: Duration(80 * time.Millisecond)},
		},
		Timeline: []Event{
			{At: Duration(5 * time.Second), Do: KindWorkloadShift, CrossEdgeFraction: &half},
			{At: Duration(8 * time.Second), Do: KindCameraJoin, Join: &Camera{ID: "popup", Profile: "street-person", Edge: "a", Frames: 20}},
			{At: Duration(12 * time.Second), Do: KindCameraLeave, Camera: "cam1"},
			{At: Duration(14 * time.Second), Do: KindWorkloadShift, Camera: "cam0", CrossEdgeFraction: &zero},
		},
	}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Dynamic
	if d == nil || d.Joins != 1 || d.Leaves != 1 || d.WorkloadShifts != 2 {
		t.Fatalf("membership accounting: %+v", d)
	}
	if len(rep.Cameras) != 3 {
		t.Fatalf("expected 3 camera reports, got %d", len(rep.Cameras))
	}
	var popup, left bool
	for _, cr := range rep.Cameras {
		if cr.Camera == "popup" && cr.Summary.Frames > 0 {
			popup = true
		}
		if cr.Camera == "cam1" && cr.Left && cr.Summary.Frames < 50 {
			left = true
		}
	}
	if !popup {
		t.Error("joined camera processed no frames")
	}
	if !left {
		t.Error("left camera not truncated")
	}
	// The fleet ran cross-shard traffic only between the shifts.
	if rep.TwoPC.CrossEdgeCommits == 0 && rep.TwoPC.RemoteCommits == 0 {
		t.Error("workload shift to 50% cross-edge produced no cross-shard commits")
	}
	if len(rep.Phases) == 0 {
		t.Fatal("timeline produced no phase slices")
	}
	var phaseFrames int
	for _, p := range rep.Phases {
		phaseFrames += p.Frames
	}
	if phaseFrames != rep.Frames {
		t.Errorf("phase slices cover %d frames, fleet ran %d", phaseFrames, rep.Frames)
	}
}

// TestMigrateAfterStreamEnds re-homes a camera whose stream already
// finished: the shard keys must still hand over and the report must place
// the camera on its destination edge (the feeder is gone, so the rebind
// cannot ride the next frame).
func TestMigrateAfterStreamEnds(t *testing.T) {
	s := &Scenario{
		Version: 1,
		Seed:    3,
		Topology: Topology{
			Edges: []Edge{{ID: "a"}, {ID: "b"}},
			Cameras: []Camera{
				{ID: "short", Profile: "park-dog", Edge: "a", Frames: 10},
				{ID: "long", Profile: "street-vehicles", Edge: "b", Frames: 60},
			},
			Sharded: true,
			Batcher: Batcher{MaxBatch: 8, SLO: Duration(80 * time.Millisecond)},
		},
		Timeline: []Event{
			// The 10-frame stream (2 fps) ends by t=5s; migrate at t=20s.
			{At: Duration(20 * time.Second), Do: KindMigrateCamera, Camera: "short", To: "b"},
		},
	}
	rt, err := New(s, vclock.NewSim())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Cluster.Close()
	rep := rt.Run()
	if got := rt.Cluster.ShardMap().Owner(rt.idx["short"]); got != 1 {
		t.Fatalf("shard owned by %d after post-stream migration", got)
	}
	for _, cr := range rep.Cameras {
		if cr.Camera == "short" && cr.Edge != "b" {
			t.Fatalf("camera reported on edge %q, want destination \"b\"", cr.Edge)
		}
	}
}

// TestScenarioErrorsSurface makes sure a broken scenario fails fast.
func TestScenarioErrorsSurface(t *testing.T) {
	s := twoEdgeScenario()
	s.Timeline = append(s.Timeline, Event{At: Duration(time.Second), Do: "warp_core_breach"})
	if _, err := Run(s); err == nil || !strings.Contains(err.Error(), "unknown event kind") {
		t.Fatalf("got %v", err)
	}
}
