package scenario

import (
	"bytes"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"croesus/internal/obs"
	"croesus/internal/vclock"
)

// The sharded scheduler's contract is that parallelism is invisible:
// however many OS threads advance the shards and however many shards the
// timer heap is split into, every wakeup still fires in global (at, seq)
// order, so a scenario replay is byte-identical. These tests pin that down
// end to end — full fleet scenarios (migration, crash/WAL recovery, link
// faults), compared as rendered reports AND as exported JSONL span traces,
// across GOMAXPROCS 1/2/8 and shard counts 1/4/16.

func scenarioFile(name string) string {
	return filepath.Join("..", "..", "cmd", "croesus-cluster", "testdata", name)
}

// runOnce replays one scenario on a sharded sim clock and returns the
// rendered report plus the deterministic JSONL trace export.
func runOnce(t *testing.T, path string, shards int) (string, []byte) {
	t.Helper()
	s, err := Load(path)
	if err != nil {
		t.Fatalf("Load(%s): %v", path, err)
	}
	o := obs.New()
	rt, err := NewObserved(s, vclock.NewSimSharded(shards), nil, o)
	if err != nil {
		t.Fatalf("NewObserved(%s): %v", path, err)
	}
	defer rt.Cluster.Close()
	rep := rt.Run()
	var tr bytes.Buffer
	if err := obs.WriteJSONL(&tr, o.Trace.Spans()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return rep.Format(), tr.Bytes()
}

func testScenarioDeterminism(t *testing.T, name string) {
	path := scenarioFile(name)
	wantReport, wantTrace := runOnce(t, path, vclock.DefaultShards)

	check := func(t *testing.T, label string, shards int) {
		t.Helper()
		report, trace := runOnce(t, path, shards)
		if report != wantReport {
			t.Errorf("%s: report differs from baseline\n--- baseline ---\n%s\n--- got ---\n%s", label, wantReport, report)
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("%s: JSONL trace differs from baseline (%d vs %d bytes)", label, len(wantTrace), len(trace))
		}
	}

	t.Run("gomaxprocs", func(t *testing.T) {
		for _, procs := range []int{1, 2, 8} {
			old := runtime.GOMAXPROCS(procs)
			check(t, "GOMAXPROCS="+strconv.Itoa(procs), vclock.DefaultShards)
			runtime.GOMAXPROCS(old)
		}
	})
	t.Run("shards", func(t *testing.T) {
		for _, shards := range []int{1, 4, 16} {
			check(t, "shards="+strconv.Itoa(shards), shards)
		}
	})
}

// TestDeterminismMigrate replays the camera-migration scenario (the CI
// golden) across thread counts and shard counts.
func TestDeterminismMigrate(t *testing.T) {
	testScenarioDeterminism(t, "migrate.json")
}

// TestDeterminismFleetCrash replays the crash/WAL-recovery scenario — the
// heaviest scheduler workload in testdata (edge crash, respawn, replay,
// link fault, camera churn) — across thread counts and shard counts.
func TestDeterminismFleetCrash(t *testing.T) {
	testScenarioDeterminism(t, "fleet-crash.json")
}
