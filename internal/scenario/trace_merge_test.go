package scenario

import (
	"bytes"
	"testing"

	"croesus/internal/obs"
	"croesus/internal/obs/collect"
)

// TestMergedTraceDeterministicOnSim runs the same sim scenario twice and
// requires the whole collection pipeline — merge, alignment, watchdog,
// both exporters — to produce byte-identical output. The sim fleet shares
// one virtual clock, so the single-stream merge must also be a no-op
// shift (offset 0, no unaligned processes).
func TestMergedTraceDeterministicOnSim(t *testing.T) {
	render := func() (jsonl, chrome, incidents []byte) {
		_, o := runObserved(t)
		m, err := collect.Merge(
			[]collect.Stream{{Proc: "sim", Spans: o.Trace.Spans()}},
			collect.Options{},
		)
		if err != nil {
			t.Fatal(err)
		}
		if m.Reference != "sim" || m.Offsets["sim"] != 0 || len(m.Unaligned) != 0 {
			t.Fatalf("single sim stream misaligned: ref=%q offsets=%v unaligned=%v",
				m.Reference, m.Offsets, m.Unaligned)
		}
		wd := collect.NewWatchdog(collect.WatchdogConfig{Tolerance: m.Tolerance()})
		for _, s := range m.Spans {
			wd.Feed(s)
		}
		ins := wd.Finish()
		// The virtual clock is exact: spans sharing one clock must never
		// trip the ordering probe, and every cross-span parent reference
		// the sim emits must resolve.
		for _, in := range ins {
			if in.Kind == collect.IncidentChildBeforeParent || in.Kind == collect.IncidentParentMissing {
				t.Errorf("sim trace causality incident: %+v", in)
			}
		}
		var jb, cb, ib bytes.Buffer
		if err := obs.WriteJSONL(&jb, m.Spans); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteChrome(&cb, ins); err != nil {
			t.Fatal(err)
		}
		for _, in := range ins {
			ib.WriteString(in.Kind)
			ib.WriteString(in.Detail)
		}
		return jb.Bytes(), cb.Bytes(), ib.Bytes()
	}

	j1, c1, i1 := render()
	j2, c2, i2 := render()
	if len(j1) == 0 {
		t.Fatal("merged sim trace is empty")
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("merged JSONL diverged between identical runs: %d vs %d bytes", len(j1), len(j2))
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("merged Chrome trace diverged between identical runs: %d vs %d bytes", len(c1), len(c2))
	}
	if !bytes.Equal(i1, i2) {
		t.Fatalf("watchdog incidents diverged between identical runs:\n%s\n---\n%s", i1, i2)
	}
}
