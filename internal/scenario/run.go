// The scenario runtime: compile a Scenario into a cluster.Config, then
// drive the cluster through the timeline. Fault events ride the cluster's
// deterministic fault injector (the old cluster.Config.Faults machinery,
// now an implementation detail behind the timeline); membership, migration,
// workload, outage, and checkpoint events become scheduled calls into the
// cluster's dynamic-fleet API. Every event also marks a phase boundary, so
// the report slices the run into before/during/after windows.
package scenario

import (
	"fmt"
	"time"

	"croesus/internal/cluster"
	"croesus/internal/faults"
	"croesus/internal/obs"
	"croesus/internal/transport"
	"croesus/internal/twopc"
	"croesus/internal/vclock"
)

// Transport names accepted by Options.Transport.
const (
	// TransportSim runs the fleet in-process on the virtual clock over
	// netsim links — deterministic, byte-identical replay.
	TransportSim = "sim"
	// TransportTCP runs the same fleet over loopback TCP sockets on the
	// wall clock: frames, validation traffic, and 2PC messages cross real
	// connections, and timeline faults tear those connections down.
	TransportTCP = "tcp"
)

// Options select how a scenario deploys. The zero value is the simulated
// deployment.
type Options struct {
	// Transport is TransportSim (default) or TransportTCP.
	Transport string
	// TimeScale compresses modeled latencies — inference sleeps, frame
	// pacing, SLO deadlines, and the event timeline — on the TCP
	// deployment's wall clock: 0.05 runs a 20-second scenario in about one
	// real second. 0 or 1 runs at full fidelity. Ignored on sim, where
	// virtual time is already free.
	TimeScale float64
	// Obs, when set, threads the observability layer through the fleet:
	// per-stage spans to its tracer, fleet counters and latency histograms
	// into its registry. Works identically on both transports; on sim the
	// resulting trace is deterministic.
	Obs *obs.Obs
	// Shaped applies the modeled per-path latency/bandwidth shaping
	// (transport.ShapedTCP: the sim's netsim link parameters as
	// token-bucket pacing plus injected delay) to the TCP deployment, so
	// its latencies are directly comparable to sim's. Ignored on sim.
	Shaped bool
}

// Runner deploys one scenario on a transport RunWith does not build in —
// registered by packages that provide additional deployments (the
// multi-process fleet orchestrator), keyed by the Options.Transport name
// they serve.
type Runner func(s *Scenario, o Options) (*cluster.ClusterReport, error)

var runners = map[string]Runner{}

// RegisterRunner installs a runner for a transport name. RunWith
// dispatches unknown transport names through this registry, so a main
// package can add a deployment without this package importing it.
func RegisterRunner(name string, r Runner) { runners[name] = r }

// Runtime is a compiled scenario bound to a cluster, ready to Run. Tests
// reach through Cluster for post-run inspection (Injector().
// VerifyDurability(), ShardMap(), Outcomes()).
type Runtime struct {
	Scenario *Scenario
	Cluster  *cluster.Cluster

	clk  vclock.Clock
	cams []Camera       // every camera the scenario ever runs, shard-indexed
	idx  map[string]int // camera id → shard index
}

// New validates the scenario, compiles it to a cluster configuration, and
// provisions the fleet on clk over the default simulated transport. The
// caller owns the clock (it must be the driver) and must Close the cluster
// when done.
func New(s *Scenario, clk vclock.Clock) (*Runtime, error) {
	return NewOn(s, clk, nil)
}

// NewOn is New with an explicit deployment transport (nil: simulated).
// The cluster takes ownership of the transport and closes it with Close.
func NewOn(s *Scenario, clk vclock.Clock, tr transport.Transport) (*Runtime, error) {
	return NewObserved(s, clk, tr, nil)
}

// NewObserved is NewOn with an observability layer threaded through the
// fleet (nil: disabled).
func NewObserved(s *Scenario, clk vclock.Clock, tr transport.Transport, o *obs.Obs) (*Runtime, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cams, idx, err := s.cameraSet()
	if err != nil {
		return nil, err
	}
	cfg, err := s.clusterConfig(clk, cams, idx)
	if err != nil {
		return nil, err
	}
	cfg.Transport = tr
	cfg.Obs = o
	c, err := cluster.New(cfg)
	if err != nil {
		if tr != nil {
			tr.Close()
		}
		return nil, err
	}
	return &Runtime{Scenario: s, Cluster: c, clk: clk, cams: cams, idx: idx}, nil
}

// Run plays the timeline against the fleet and blocks until the run
// drains, returning the report. Call once, from the clock's driver.
func (rt *Runtime) Run() *cluster.ClusterReport {
	c := rt.Cluster
	c.Start()
	for _, ev := range rt.Scenario.sortedTimeline() {
		ev := ev
		c.Schedule(time.Duration(ev.At), ev.Label(), func() { rt.exec(ev) })
	}
	c.StartCameras()
	return c.Drain()
}

// Run builds and runs a scenario in one call on a fresh virtual clock,
// releasing the fleet's durability resources when the run finishes.
func Run(s *Scenario) (*cluster.ClusterReport, error) {
	rt, err := New(s, vclock.NewSim())
	if err != nil {
		return nil, err
	}
	defer rt.Cluster.Close()
	return rt.Run(), nil
}

// RunWith runs one scenario on the selected deployment: the simulated
// fleet (Run, byte-identical replay) or the loopback-TCP fleet — the same
// compiled cluster on a wall clock, every fleet hop crossing a real
// socket, timeline faults acting as connection teardowns. One scenario
// JSON, two transports.
func RunWith(s *Scenario, o Options) (*cluster.ClusterReport, error) {
	switch o.Transport {
	case "", TransportSim:
		rt, err := NewObserved(s, vclock.NewSim(), nil, o.Obs)
		if err != nil {
			return nil, err
		}
		defer rt.Cluster.Close()
		return rt.Run(), nil
	case TransportTCP:
		clk := vclock.NewScaledReal(o.TimeScale)
		var tr transport.Transport = transport.NewTCP()
		if o.Shaped {
			tr = transport.NewShapedTCP(clk)
		}
		rt, err := NewObserved(s, clk, tr, o.Obs)
		if err != nil {
			return nil, err
		}
		defer rt.Cluster.Close()
		return rt.Run(), nil
	default:
		if r, ok := runners[o.Transport]; ok {
			return r(s, o)
		}
		return nil, fmt.Errorf("scenario: unknown transport %q (want %s or %s)", o.Transport, TransportSim, TransportTCP)
	}
}

// seedFor is the deterministic per-camera seed: explicit, or scenario seed
// plus the camera's global (shard) index.
func (rt *Runtime) seedFor(cam Camera) int64 {
	if cam.Seed != 0 {
		return cam.Seed
	}
	seed := rt.Scenario.Seed
	if seed == 0 {
		seed = 42
	}
	return seed + int64(rt.idx[cam.ID])
}

func (rt *Runtime) cameraSpec(cam Camera) cluster.CameraSpec {
	p, err := profileByName(cam.Profile)
	if err != nil {
		panic(err) // validated
	}
	return cluster.CameraSpec{
		ID:      cam.ID,
		Profile: p,
		Seed:    rt.seedFor(cam),
		Frames:  cam.Frames,
		Edge:    cam.Edge,
		Shard:   rt.idx[cam.ID],
	}
}

// exec applies one timeline event to the live fleet. Reference errors were
// ruled out by validation; the errors that remain are modeled outcomes (a
// migration that never found its edges up exhausts its retries and is
// counted in the report), so exec never fails the run.
func (rt *Runtime) exec(ev Event) {
	c := rt.Cluster
	switch ev.Do {
	case KindCameraJoin:
		if err := c.AddCamera(rt.cameraSpec(*ev.Join)); err != nil {
			panic(fmt.Sprintf("scenario: %s: %v", ev.Label(), err))
		}
	case KindCameraLeave:
		if err := c.StopCamera(ev.Camera); err != nil {
			panic(fmt.Sprintf("scenario: %s: %v", ev.Label(), err))
		}
	case KindMigrateCamera:
		// A failed migration (edges down past the retry budget) is a
		// legitimate run outcome, counted in Dynamic.MigrationsFailed.
		_ = c.MigrateCamera(ev.Camera, ev.To)
	case KindWorkloadShift:
		if err := c.ShiftWorkload(ev.Camera, ev.Rate, ev.CrossEdgeFraction, ev.ZipfSkew); err != nil {
			panic(fmt.Sprintf("scenario: %s: %v", ev.Label(), err))
		}
	case KindEdgeRetire:
		if err := c.RetireEdge(ev.Edge); err != nil {
			panic(fmt.Sprintf("scenario: %s: %v", ev.Label(), err))
		}
	case KindEdgeCrash:
		if rt.Scenario.Sharded() {
			return // rides the fault injector, scheduled at Start
		}
		if err := c.SetEdgeOutage(ev.Edge, true); err != nil {
			panic(fmt.Sprintf("scenario: %s: %v", ev.Label(), err))
		}
		if ev.RestartAfter > 0 {
			rt.clk.Sleep(time.Duration(ev.RestartAfter))
			c.SetEdgeOutage(ev.Edge, false)
		}
	case KindTwoPCCrash:
		// Armed in the fault plan at Start; the event here is the phase
		// boundary.
	case KindLinkFault:
		if ev.B == "cloud" {
			c.SetCloudLink(ev.A, true)
			if ev.Heal > ev.At {
				rt.clk.Sleep(time.Duration(ev.Heal - ev.At))
				c.SetCloudLink(ev.A, false)
			}
			return
		}
		// Edge↔edge partitions ride the fault injector.
	case KindCheckpoint:
		if err := c.CheckpointNow(ev.Edge); err != nil {
			panic(fmt.Sprintf("scenario: %s: %v", ev.Label(), err))
		}
	}
}

// clusterConfig compiles the scenario's topology (and the fault half of
// its timeline) into the static cluster configuration.
func (s *Scenario) clusterConfig(clk vclock.Clock, cams []Camera, idx map[string]int) (cluster.Config, error) {
	t := s.Topology
	sharded := s.Sharded()
	seed := s.Seed
	if seed == 0 {
		seed = 42
	}

	edgeIdx := map[string]int{}
	edges := make([]cluster.EdgeSpec, len(t.Edges))
	for i, e := range t.Edges {
		edgeIdx[e.ID] = i
		edges[i] = cluster.EdgeSpec{ID: e.ID, Speed: e.Speed, Slots: e.Slots, SameSite: e.SameSite}
	}

	var owners []int
	if sharded {
		owners = make([]int, len(cams))
		for _, cam := range cams {
			owners[idx[cam.ID]] = edgeIdx[cam.Edge]
		}
	}

	specs := make([]cluster.CameraSpec, len(t.Cameras))
	for i, cam := range t.Cameras {
		p, err := profileByName(cam.Profile)
		if err != nil {
			return cluster.Config{}, err
		}
		camSeed := cam.Seed
		if camSeed == 0 {
			camSeed = seed + int64(idx[cam.ID])
		}
		specs[i] = cluster.CameraSpec{
			ID:      cam.ID,
			Profile: p,
			Seed:    camSeed,
			Frames:  cam.Frames,
			Edge:    cam.Edge,
			Shard:   idx[cam.ID],
		}
	}

	// The timeline's fault events compile to a faults.Plan: the injector
	// executes them with WAL-backed recovery. Unsharded fleets keep
	// edge_crash and cloud link_fault events in the runtime instead.
	var plan *faults.Plan
	durable := t.Durable || t.CheckpointEvery > 0
	if sharded {
		p := faults.Plan{ReplayCost: time.Duration(t.ReplayCost)}
		for _, ev := range s.sortedTimeline() {
			switch ev.Do {
			case KindEdgeCrash:
				p.Crashes = append(p.Crashes, faults.EdgeCrash{
					Edge:         edgeIdx[ev.Edge],
					At:           time.Duration(ev.At),
					RestartAfter: time.Duration(ev.RestartAfter),
				})
			case KindTwoPCCrash:
				var point twopc.TwoPCPoint
				switch ev.Point {
				case PointParticipantPrepared:
					point = twopc.PointParticipantPrepared
				case PointAfterPrepare:
					point = twopc.PointAfterPrepare
				case PointAfterDecision:
					point = twopc.PointAfterDecision
				}
				p.TwoPC = append(p.TwoPC, faults.TwoPCCrash{
					Edge:         edgeIdx[ev.Edge],
					Point:        point,
					Round:        ev.Round,
					RestartAfter: time.Duration(ev.RestartAfter),
				})
			case KindLinkFault:
				if ev.B == "cloud" {
					continue // handled by the runtime on both fleet kinds
				}
				p.Links = append(p.Links, faults.LinkFault{
					A:    edgeIdx[ev.A],
					B:    edgeIdx[ev.B],
					At:   time.Duration(ev.At),
					Heal: time.Duration(ev.Heal),
				})
			case KindCheckpoint:
				durable = true
			}
		}
		if !p.Empty() {
			plan = &p
		}
	}

	shards := 0
	if sharded {
		shards = len(cams)
	}
	var proto cluster.TxnProtocol
	if t.Protocol == "ms-sr" {
		proto = cluster.TxnMSSR
	}
	return cluster.Config{
		Clock:             clk,
		Cameras:           specs,
		Edges:             edges,
		Seed:              seed,
		ThetaL:            t.ThetaL,
		ThetaU:            t.ThetaU,
		OverlapMin:        t.OverlapMin,
		WorkloadKeys:      t.WorkloadKeys,
		OpCost:            time.Duration(t.OpCost),
		Sharded:           sharded,
		Graph:             t.Graph,
		CrossEdgeFraction: t.CrossEdgeFraction,
		Protocol:          proto,
		ZipfSkew:          t.ZipfSkew,
		Shards:            shards,
		ShardOwners:       owners,
		Faults:            plan,
		Durable:           durable,
		CheckpointEvery:   time.Duration(t.CheckpointEvery),
		Batcher: cluster.BatcherConfig{
			MaxBatch:   t.Batcher.MaxBatch,
			SLO:        time.Duration(t.Batcher.SLO),
			MaxPending: t.Batcher.MaxPending,
			CloudSpeed: t.Batcher.CloudSpeed,
		},
	}, nil
}
