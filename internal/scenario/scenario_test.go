package scenario

import (
	"strings"
	"testing"
	"time"
)

func twoEdgeScenario() *Scenario {
	return &Scenario{
		Version: 1,
		Name:    "test",
		Seed:    7,
		Topology: Topology{
			Edges: []Edge{{ID: "north"}, {ID: "south", Speed: 0.45}},
			Cameras: []Camera{
				{ID: "cam0", Profile: "street-vehicles", Edge: "north", Frames: 40},
				{ID: "cam1", Profile: "park-dog", Edge: "south", Frames: 40},
			},
			Sharded:           true,
			CrossEdgeFraction: 0.25,
			Batcher:           Batcher{MaxBatch: 8, SLO: Duration(80 * time.Millisecond)},
		},
		Timeline: []Event{
			{At: Duration(5 * time.Second), Do: KindMigrateCamera, Camera: "cam0", To: "south"},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := twoEdgeScenario()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decoding own encoding: %v\n%s", err, data)
	}
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", data, data2)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"missing version", `{"topology":{"edges":[{"id":"e"}],"cameras":[{"id":"c","profile":"park-dog"}]}}`, "version"},
		{"future version", `{"version":99,"topology":{"edges":[{"id":"e"}],"cameras":[{"id":"c","profile":"park-dog"}]}}`, "version 99"},
		{"unknown field", `{"version":1,"topology":{"edges":[{"id":"e"}],"cameras":[{"id":"c","profile":"park-dog"}],"bogus":1}}`, "bogus"},
		{"unknown profile", `{"version":1,"topology":{"edges":[{"id":"e"}],"cameras":[{"id":"c","profile":"nope"}]}}`, "unknown profile"},
		{"unknown event kind", `{"version":1,"topology":{"edges":[{"id":"e"}],"cameras":[{"id":"c","profile":"park-dog"}]},"timeline":[{"at":"1s","do":"explode"}]}`, "unknown event kind"},
		{"unknown camera ref", `{"version":1,"topology":{"edges":[{"id":"e"}],"cameras":[{"id":"c","profile":"park-dog"}]},"timeline":[{"at":"1s","do":"camera_leave","camera":"ghost"}]}`, "unknown camera"},
		{"bad duration", `{"version":1,"topology":{"edges":[{"id":"e"}],"cameras":[{"id":"c","profile":"park-dog"}]},"timeline":[{"at":"soon","do":"camera_leave","camera":"c"}]}`, "bad duration"},
	}
	for _, tc := range cases {
		_, err := Decode([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateFaultGating(t *testing.T) {
	// 2PC crashes need durable partitions: an unsharded scenario must get
	// a clear error, not a silent upgrade.
	s := &Scenario{
		Topology: Topology{
			Edges:   []Edge{{ID: "a"}, {ID: "b"}},
			Cameras: []Camera{{ID: "c", Profile: "park-dog"}},
		},
		Timeline: []Event{{At: Duration(time.Second), Do: KindTwoPCCrash, Edge: "a", Point: PointAfterPrepare}},
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "durable partitions") {
		t.Fatalf("unsharded twopc_crash: got %v, want durable-partitions error", err)
	}

	// Edge-to-edge link faults need peer links (sharded); the cloud
	// uplink variant is fine on any fleet.
	s.Timeline = []Event{{At: Duration(time.Second), Do: KindLinkFault, A: "a", B: "b"}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("unsharded edge link_fault: got %v, want sharded-fleet error", err)
	}
	s.Timeline = []Event{{At: Duration(time.Second), Do: KindLinkFault, A: "a", B: "cloud"}}
	if err := s.Validate(); err != nil {
		t.Fatalf("cloud link fault on unsharded fleet should validate, got %v", err)
	}

	// Plain edge crashes are allowed on unsharded fleets (the ROADMAP's
	// "fault plans for the unsharded fleet").
	s.Timeline = []Event{{At: Duration(time.Second), Do: KindEdgeCrash, Edge: "a", RestartAfter: Duration(time.Second)}}
	if err := s.Validate(); err != nil {
		t.Fatalf("unsharded edge_crash should validate, got %v", err)
	}
}

func TestValidateShardedNeedsPinnedCameras(t *testing.T) {
	s := &Scenario{
		Topology: Topology{
			Edges:   []Edge{{ID: "a"}},
			Cameras: []Camera{{ID: "c", Profile: "park-dog"}},
			Sharded: true,
		},
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "needs an edge") {
		t.Fatalf("sharded scenario with unpinned camera: got %v", err)
	}
}

func TestValidateJoinOrdering(t *testing.T) {
	s := twoEdgeScenario()
	s.Timeline = []Event{
		{At: Duration(10 * time.Second), Do: KindCameraJoin, Join: &Camera{ID: "late", Profile: "park-dog", Edge: "north", Frames: 10}},
		{At: Duration(5 * time.Second), Do: KindCameraLeave, Camera: "late"},
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "before it joins") {
		t.Fatalf("leave-before-join: got %v", err)
	}
}
