package scenario

import (
	"strings"
	"testing"
	"time"

	"croesus/internal/vclock"
)

func retireScenario(sharded bool) *Scenario {
	s := &Scenario{
		Name: "retire",
		Seed: 7,
		Topology: Topology{
			Edges: []Edge{{ID: "keep"}, {ID: "old"}},
			Cameras: []Camera{
				{ID: "stay", Profile: "street-vehicles", Edge: "keep", Frames: 30},
				{ID: "move", Profile: "park-dog", Edge: "old", Frames: 30},
			},
			Batcher: Batcher{MaxBatch: 8, SLO: Duration(80 * time.Millisecond)},
		},
		Timeline: []Event{
			{At: Duration(2 * time.Second), Do: KindEdgeRetire, Edge: "old"},
		},
	}
	if sharded {
		s.Topology.CrossEdgeFraction = 0.25
	}
	return s
}

// TestEdgeRetireDrainsGracefully: a retirement moves the edge's cameras
// (and, sharded, their shards) away and drops nothing — the planned
// counterpart of the crash events, closing the "retiring an edge is a
// crash without restart" gap.
func TestEdgeRetireDrainsGracefully(t *testing.T) {
	for _, sharded := range []bool{false, true} {
		name := "unsharded"
		if sharded {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			rt, err := New(retireScenario(sharded), vclock.NewSim())
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Cluster.Close()
			rep := rt.Run()
			if rep.Dynamic == nil || rep.Dynamic.Retired != 1 {
				t.Fatalf("retirement not counted: %+v", rep.Dynamic)
			}
			if rep.Dynamic.FramesDropped != 0 {
				t.Errorf("graceful retirement dropped %d frames", rep.Dynamic.FramesDropped)
			}
			for _, cr := range rep.Cameras {
				if cr.Edge == "old" {
					t.Errorf("camera %q still homed on the retired edge", cr.Camera)
				}
				if cr.Summary.Frames != 30 {
					t.Errorf("camera %q finished %d frames, want 30", cr.Camera, cr.Summary.Frames)
				}
			}
			if sharded {
				if rep.Dynamic.Migrations == 0 || rep.Dynamic.MigratedKeys == 0 {
					t.Errorf("sharded retirement handed no shard keys over: %+v", rep.Dynamic)
				}
				// The retired partition must own no shard any longer.
				smap := rt.Cluster.ShardMap()
				for s := 0; s < 2; s++ {
					if smap.Owner(s) == 1 {
						t.Errorf("shard %d still owned by the retired edge", s)
					}
				}
			}
		})
	}
}

// TestEdgeRetireDeterministic pins the retirement drain into the
// byte-identical replay contract.
func TestEdgeRetireDeterministic(t *testing.T) {
	run := func() string {
		rep, err := Run(retireScenario(true))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Format()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("retirement replay diverged:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if !strings.Contains(run(), "retired edges: 1") {
		t.Error("report does not surface the retirement")
	}
}

// TestRetireValidation covers the structural rules: unknown edges, single
// edge fleets, double retirement, and later events targeting a retired
// edge are all rejected before a fleet is built.
func TestRetireValidation(t *testing.T) {
	base := func() *Scenario { return retireScenario(false) }

	s := base()
	s.Timeline[0].Edge = "ghost"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown edge") {
		t.Errorf("unknown edge accepted: %v", err)
	}

	s = base()
	s.Topology.Edges = s.Topology.Edges[:1]
	s.Topology.Cameras = s.Topology.Cameras[:1]
	s.Timeline[0].Edge = "keep"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "one edge") {
		t.Errorf("single-edge retirement accepted: %v", err)
	}

	s = base()
	s.Timeline = append(s.Timeline, Event{At: Duration(3 * time.Second), Do: KindEdgeRetire, Edge: "old"})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "retired twice") {
		t.Errorf("double retirement accepted: %v", err)
	}

	s = base()
	s.Timeline = append(s.Timeline, Event{At: Duration(3 * time.Second), Do: KindEdgeRetire, Edge: "keep"})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "retires every edge") {
		t.Errorf("retiring the whole fleet accepted: %v", err)
	}

	s = base()
	s.Timeline = append(s.Timeline, Event{At: Duration(5 * time.Second), Do: KindMigrateCamera, Camera: "stay", To: "old"})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "retires at") {
		t.Errorf("migration to a retired edge accepted: %v", err)
	}

	s = base()
	s.Timeline = append(s.Timeline, Event{At: Duration(5 * time.Second), Do: KindCameraJoin,
		Join: &Camera{ID: "late", Profile: "park-dog", Edge: "old"}})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "retires at") {
		t.Errorf("join pinned to a retired edge accepted: %v", err)
	}

	// Migrating to the edge before it retires is legal.
	s = base()
	s.Timeline = append(s.Timeline, Event{At: Duration(1 * time.Second), Do: KindMigrateCamera, Camera: "stay", To: "old"})
	if err := s.Validate(); err != nil {
		t.Errorf("pre-retirement migration rejected: %v", err)
	}
}
