package scenario

import (
	"fmt"
	"strings"
	"testing"
)

// graphDoc wraps a graph block in a minimal two-edge scenario document.
func graphDoc(graph string) string {
	return fmt.Sprintf(`{"version":1,"topology":{"edges":[{"id":"e0"},{"id":"e1"}],"cameras":[{"id":"c","profile":"park-dog"}],"graph":%s}}`, graph)
}

// TestGraphValidation pins the position-specific rejection of every
// malformed graph shape: the error must name the offending node (and
// branch) so a typo in a deep scenario file is findable without
// bisection.
func TestGraphValidation(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"empty graph", graphDoc(`{"nodes":[]}`),
			"graph: needs at least one node"},
		{"unknown tier", graphDoc(`{"nodes":[{"tier":"edge"},{"tier":"fog"}]}`),
			`node 1 ("n1"): unknown tier "fog" (want edge, peer, or cloud)`},
		{"first node off edge", graphDoc(`{"nodes":[{"tier":"cloud"}]}`),
			`node 0 ("n0"): first node must be on the edge tier, got "cloud"`},
		{"duplicate name", graphDoc(`{"nodes":[{"name":"det","tier":"edge"},{"tier":"peer"},{"name":"det","tier":"cloud"}]}`),
			`node 2: duplicate node name "det" (first used by node 0)`},
		{"reserved done", graphDoc(`{"nodes":[{"tier":"edge"},{"name":"done","tier":"cloud"}]}`),
			`node 1: "done" is reserved`},
		{"unknown model", graphDoc(`{"nodes":[{"tier":"edge","model":"resnet"}]}`),
			`node 0 ("n0"): unknown model "resnet"`},
		{"negative speed", graphDoc(`{"nodes":[{"tier":"edge","speed":-1}]}`),
			`node 0 ("n0"): speed must be ≥ 0, got -1`},
		{"switch lo above hi", graphDoc(`{"nodes":[{"tier":"edge","switch":[{"lo":0.8,"hi":0.2,"to":"done"}]},{"tier":"cloud"}]}`),
			`node 0 ("n0"): switch branch 0 has lo 0.80 > hi 0.20`},
		{"switch outside unit range", graphDoc(`{"nodes":[{"tier":"edge","switch":[{"lo":0,"hi":1.5,"to":"done"}]},{"tier":"cloud"}]}`),
			`switch branch 0 range [0.00, 1.50] must lie in [0, 1]`},
		{"switch unknown target", graphDoc(`{"nodes":[{"tier":"edge","switch":[{"lo":0,"hi":1,"to":"ghost"}]},{"tier":"cloud"}]}`),
			`switch branch 0 routes to unknown node "ghost"`},
		{"switch cycle", graphDoc(`{"nodes":[{"name":"a","tier":"edge"},{"name":"b","tier":"cloud","switch":[{"lo":0,"hi":1,"to":"a"}]}]}`),
			`node 1 ("b"): switch branch 0 routes to "a" (node 0), which is not a later node — cycles are not allowed`},
		{"switch coverage gap", graphDoc(`{"nodes":[{"tier":"edge","switch":[{"lo":0,"hi":0.3,"to":"done"},{"lo":0.6,"hi":1,"to":"n1"}]},{"tier":"cloud"}]}`),
			`switch branches leave [0.30, 0.60) of the confidence range uncovered`},
		{"switch uncovered tail", graphDoc(`{"nodes":[{"tier":"edge","switch":[{"lo":0,"hi":0.7,"to":"done"}]},{"tier":"cloud"}]}`),
			`switch branches leave [0.70, 1.00] of the confidence range uncovered`},
	}
	for _, tc := range cases {
		_, err := Decode([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestGraphPeerNeedsTwoEdges pins the fleet-shape check: a peer-tier node
// on a one-edge topology has no mesh to hop over.
func TestGraphPeerNeedsTwoEdges(t *testing.T) {
	doc := `{"version":1,"topology":{"edges":[{"id":"solo"}],"cameras":[{"id":"c","profile":"park-dog"}],"graph":{"nodes":[{"tier":"edge"},{"tier":"peer"},{"tier":"cloud"}]}}}`
	_, err := Decode([]byte(doc))
	if err == nil {
		t.Fatal("one-edge peer graph decoded without error")
	}
	want := `node 1 ("n1"): peer tier needs at least 2 edges in the fleet, got 1`
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

// TestGraphRoundTrip checks a valid depth-3 graph block survives
// Encode/Decode byte for byte alongside the rest of the topology.
func TestGraphRoundTrip(t *testing.T) {
	doc := graphDoc(`{"nodes":[{"name":"detect","tier":"edge"},{"name":"classify","tier":"peer","model":"yolo-320","switch":[{"lo":0,"hi":0.6,"to":"verify"},{"lo":0.6,"hi":1,"to":"done"}]},{"name":"verify","tier":"cloud","model":"yolo-608"}]}`)
	s, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Topology.Graph == nil || len(s.Topology.Graph.Nodes) != 3 {
		t.Fatalf("graph block lost in decode: %+v", s.Topology.Graph)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	again, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := again.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("graph round trip not stable:\n%s\nvs\n%s", data, data2)
	}
}
