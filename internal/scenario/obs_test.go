package scenario

import (
	"bytes"
	"testing"

	"croesus/internal/obs"
	"croesus/internal/vclock"
)

// runObserved plays the acceptance scenario with an observability layer
// threaded through the fleet and returns the report text and the obs.
func runObserved(t *testing.T) (string, *obs.Obs) {
	t.Helper()
	o := obs.New()
	rt, err := NewObserved(migrateAndCrash(), vclock.NewSim(), nil, o)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Cluster.Close()
	return rt.Run().Format(), o
}

// TestTraceDeterministicOnSim is the tentpole's determinism bar: the same
// scenario under the same seed must export a byte-identical JSONL trace,
// and tracing must not lose spans to the capacity cap.
func TestTraceDeterministicOnSim(t *testing.T) {
	export := func() []byte {
		_, o := runObserved(t)
		if d := o.Trace.Dropped(); d != 0 {
			t.Fatalf("tracer dropped %d spans; the determinism check is vacuous", d)
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, o.Trace.Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t1 := export()
	t2 := export()
	if len(t1) == 0 {
		t.Fatal("observed run emitted no spans")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatalf("trace replay diverged: %d vs %d bytes", len(t1), len(t2))
	}

	// The scenario exercises crash recovery, a shard migration, and
	// cross-edge 2PC; their spans must all be present.
	names := map[string]bool{}
	_, o := runObserved(t)
	for _, s := range o.Trace.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{
		obs.SpanFrameIngest, obs.SpanEdgeDetect, obs.SpanInitialTxn,
		obs.SpanUplink, obs.SpanCloudValidate, obs.SpanBatchQueue,
		obs.SpanBatchRun, obs.SpanTwoPC, obs.SpanLockWait,
		obs.SpanWALReplay, obs.SpanQuiesce, obs.SpanCutover,
	} {
		if !names[want] {
			t.Errorf("trace is missing %q spans", want)
		}
	}
}

// TestReportUnchangedWithObs pins the schedule-neutrality invariant:
// enabling the observability layer must not perturb the virtual-time
// schedule, so the report is byte-identical with and without it.
func TestReportUnchangedWithObs(t *testing.T) {
	plain, err := Run(migrateAndCrash())
	if err != nil {
		t.Fatal(err)
	}
	observed, o := runObserved(t)
	if plain.Format() != observed {
		t.Fatalf("observability perturbed the schedule:\n--- without obs\n%s\n--- with obs\n%s", plain.Format(), observed)
	}

	// The registry's mirrored counters must agree with the report's own.
	snap := o.Reg.Snapshot()
	total := int64(0)
	for k, v := range snap {
		if len(k) >= len(obs.MetricFrames) && k[:len(obs.MetricFrames)] == obs.MetricFrames {
			total += v
		}
	}
	if total != int64(plain.Frames) {
		t.Fatalf("registry counted %d frames, report %d", total, plain.Frames)
	}
}
