// Package scenario is the declarative deployment API of the Croesus
// reproduction: a Scenario names a fleet topology — edges, cameras,
// protocol, shards, cloud batcher — plus a clock-ordered timeline of events
// that reshape the fleet while it runs: cameras joining and leaving, a
// camera (and its logical shard's keys) migrating between edges, workload
// shifts, scripted faults, and WAL checkpoints. The paper evaluates fixed
// fleets run to completion; a production system's interesting behaviour is
// exactly what happens at these runtime events, and a scenario makes each
// of them a first-class, replayable input: the same scenario under the
// same seed yields a byte-identical report.
//
// Scenarios have a versioned JSON encoding (Decode/Encode, currently
// version 1) so they live in files next to experiments; internal/scenario
// also owns the runtime that drives a cluster.Cluster through the
// timeline (run.go). The old cluster.Config remains as the static subset —
// see the README's deprecation mapping.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"croesus/internal/node"
	"croesus/internal/video"
)

// CurrentVersion is the encoding version this build reads and writes.
const CurrentVersion = 1

// Scenario is one declarative fleet deployment: a topology and the event
// timeline that plays against it.
type Scenario struct {
	// Version is the encoding version (CurrentVersion when zero).
	Version int `json:"version"`
	// Name labels the scenario in reports and files.
	Name string `json:"name,omitempty"`
	// Seed drives every model, video, and workload in the run (default
	// 42); one seed, one byte-identical report.
	Seed int64 `json:"seed,omitempty"`

	Topology Topology `json:"topology"`
	Timeline []Event  `json:"timeline,omitempty"`
}

// Topology declares the fleet as it exists at time zero.
type Topology struct {
	Edges   []Edge   `json:"edges"`
	Cameras []Camera `json:"cameras"`

	// Protocol is "ms-ia" (default) or "ms-sr".
	Protocol string `json:"protocol,omitempty"`
	// Sharded makes the fleet keyspace one database sharded across the
	// edges. Implied by CrossEdgeFraction, ZipfSkew, Durable,
	// checkpointing, or any event that needs durable partitions. A
	// sharded scenario gives every camera its own logical shard, so a
	// migration moves exactly that camera's data.
	Sharded           bool    `json:"sharded,omitempty"`
	CrossEdgeFraction float64 `json:"cross_edge_fraction,omitempty"`
	ZipfSkew          float64 `json:"zipf_skew,omitempty"`

	// WorkloadKeys sizes each camera's transaction keyspace (default
	// 1000); OpCost charges clock time per database operation.
	OpCost       Duration `json:"op_cost,omitempty"`
	WorkloadKeys int      `json:"workload_keys,omitempty"`

	// ThetaL/ThetaU are the bandwidth thresholds (defaults 0.40/0.62);
	// OverlapMin the label-matching threshold (default 0.10).
	ThetaL     float64 `json:"theta_l,omitempty"`
	ThetaU     float64 `json:"theta_u,omitempty"`
	OverlapMin float64 `json:"overlap_min,omitempty"`

	// Graph declares the inference graph: an ordered node list where
	// node k hosts transaction section k, each pinned to a placement
	// tier (edge, peer, or cloud). Absent — or the canonical two-stage
	// edge→cloud shape — the fleet runs the classic initial→final
	// pipeline, byte-identical to scenarios written before this field
	// existed.
	Graph *node.GraphSpec `json:"graph,omitempty"`

	Batcher Batcher `json:"batcher,omitempty"`

	// Durable gives every edge partition a write-ahead log even without
	// scheduled faults; CheckpointEvery checkpoints the logs on that
	// period (implies Durable). ReplayCost is the virtual time charged
	// per WAL record replayed during crash recovery.
	Durable         bool     `json:"durable,omitempty"`
	CheckpointEvery Duration `json:"checkpoint_every,omitempty"`
	ReplayCost      Duration `json:"replay_cost,omitempty"`
}

// Edge declares one edge node.
type Edge struct {
	ID string `json:"id"`
	// Speed is the machine speed factor (default 1.0).
	Speed float64 `json:"speed,omitempty"`
	// Slots bounds concurrent edge inferences (default 2).
	Slots int `json:"slots,omitempty"`
	// SameSite co-locates the edge with the cloud.
	SameSite bool `json:"same_site,omitempty"`
}

// Camera declares one camera stream (in the topology, or joining mid-run).
type Camera struct {
	ID string `json:"id"`
	// Profile names the synthetic scene, e.g. "v2-street-vehicles" (the
	// "vN-" prefix may be omitted).
	Profile string `json:"profile"`
	// Seed differentiates videos of the same profile (default: scenario
	// seed + camera index).
	Seed int64 `json:"seed,omitempty"`
	// Frames is the stream length (default 100).
	Frames int `json:"frames,omitempty"`
	// Edge places the camera. Required in sharded scenarios (the
	// camera's shard needs a home before the run starts); optional
	// otherwise (round-robin placement).
	Edge string `json:"edge,omitempty"`
}

// Batcher configures the shared cloud validator.
type Batcher struct {
	MaxBatch   int      `json:"max_batch,omitempty"`
	SLO        Duration `json:"slo,omitempty"`
	MaxPending int      `json:"max_pending,omitempty"`
	CloudSpeed float64  `json:"cloud_speed,omitempty"`
}

// Event kinds.
const (
	// KindCameraJoin adds Join (a Camera) to the fleet at At.
	KindCameraJoin = "camera_join"
	// KindCameraLeave retires Camera at At.
	KindCameraLeave = "camera_leave"
	// KindMigrateCamera moves Camera — and, sharded, its logical shard's
	// keys via a 2PC handoff — to edge To.
	KindMigrateCamera = "migrate_camera"
	// KindWorkloadShift re-shapes Camera's (or, empty, every camera's)
	// workload: Rate scales the capture rate, CrossEdgeFraction and
	// ZipfSkew reshape the key stream.
	KindWorkloadShift = "workload_shift"
	// KindEdgeCrash fail-stops Edge at At, restarting after RestartAfter
	// (≤ 0: down for the rest of the run). Sharded fleets recover from
	// the WAL; unsharded fleets drop the edge's frames while dark.
	KindEdgeCrash = "edge_crash"
	// KindEdgeRetire gracefully drains Edge out of the fleet at At — the
	// planned counterpart of a crash: its cameras (and, sharded, their
	// logical shards, via the shard-map 2PC handoff) migrate to the
	// remaining edges in index order, then the edge is permanently
	// excluded from placement. No frame is dropped by a clean retirement.
	KindEdgeRetire = "edge_retire"
	// KindTwoPCCrash fail-stops Edge at the Round-th occurrence of the
	// scripted 2PC Point. Needs durable partitions (sharded).
	KindTwoPCCrash = "twopc_crash"
	// KindLinkFault partitions the peer path A↔B (or, with B "cloud",
	// A's cloud uplink) from At until Heal.
	KindLinkFault = "link_fault"
	// KindCheckpoint checkpoints Edge's WAL (or, empty, every edge's).
	KindCheckpoint = "checkpoint"
)

// The scripted 2PC crash points of KindTwoPCCrash.
const (
	PointParticipantPrepared = "participant-prepared"
	PointAfterPrepare        = "after-prepare"
	PointAfterDecision       = "after-decision"
)

// Event is one timeline entry. Do selects the kind; the other fields are
// the kind's operands (see the Kind constants).
type Event struct {
	At Duration `json:"at"`
	Do string   `json:"do"`

	Camera string  `json:"camera,omitempty"`
	Join   *Camera `json:"join,omitempty"`
	Edge   string  `json:"edge,omitempty"`
	To     string  `json:"to,omitempty"`
	A      string  `json:"a,omitempty"`
	B      string  `json:"b,omitempty"`

	RestartAfter Duration `json:"restart_after,omitempty"`
	Heal         Duration `json:"heal,omitempty"`
	Point        string   `json:"point,omitempty"`
	Round        int      `json:"round,omitempty"`

	Rate              *float64 `json:"rate,omitempty"`
	CrossEdgeFraction *float64 `json:"cross_edge_fraction,omitempty"`
	ZipfSkew          *float64 `json:"zipf_skew,omitempty"`
}

// Label names an event for phase reports and progress lines.
func (e Event) Label() string {
	switch e.Do {
	case KindCameraJoin:
		id := ""
		if e.Join != nil {
			id = e.Join.ID
		}
		return "join:" + id
	case KindCameraLeave:
		return "leave:" + e.Camera
	case KindMigrateCamera:
		return "migrate:" + e.Camera + "→" + e.To
	case KindWorkloadShift:
		if e.Camera == "" {
			return "shift:fleet"
		}
		return "shift:" + e.Camera
	case KindEdgeCrash:
		return "crash:" + e.Edge
	case KindEdgeRetire:
		return "retire:" + e.Edge
	case KindTwoPCCrash:
		return "2pc-crash:" + e.Edge
	case KindLinkFault:
		return "partition:" + e.A + "↔" + e.B
	case KindCheckpoint:
		if e.Edge == "" {
			return "checkpoint:fleet"
		}
		return "checkpoint:" + e.Edge
	default:
		return e.Do
	}
}

// Sharded reports whether the scenario runs the sharded keyspace — set
// explicitly or implied by a knob or event that needs it.
func (s *Scenario) Sharded() bool {
	t := s.Topology
	if t.Sharded || t.CrossEdgeFraction > 0 || t.ZipfSkew > 0 || t.Durable || t.CheckpointEvery > 0 {
		return true
	}
	for _, ev := range s.Timeline {
		// Checkpoints need a WAL, which lives on the sharded fleet's
		// durable partitions; a checkpoint event upgrades the fleet.
		// TwoPC crashes do NOT upgrade — they are validated against the
		// declared topology (see Validate) so an unsharded scenario gets
		// a clear error instead of silently changing semantics.
		if ev.Do == KindCheckpoint {
			return true
		}
	}
	return false
}

// profileByName resolves a camera's profile, accepting the canonical name
// ("v1-park-dog") or the unprefixed form ("park-dog").
func profileByName(name string) (video.Profile, error) {
	var names []string
	for _, p := range video.AllProfiles() {
		names = append(names, p.Name)
		if p.Name == name {
			return p, nil
		}
		if i := strings.Index(p.Name, "-"); i > 0 && p.Name[i+1:] == name {
			return p, nil
		}
	}
	return video.Profile{}, fmt.Errorf("scenario: unknown profile %q (have %s)", name, strings.Join(names, ", "))
}

// cameraSet indexes every camera the scenario ever runs: topology cameras
// first, then joins in timeline order. The index doubles as the camera's
// logical shard in sharded scenarios.
func (s *Scenario) cameraSet() ([]Camera, map[string]int, error) {
	var all []Camera
	byID := map[string]int{}
	add := func(c Camera) error {
		if c.ID == "" {
			return fmt.Errorf("scenario: every camera needs an id")
		}
		if _, dup := byID[c.ID]; dup {
			return fmt.Errorf("scenario: duplicate camera %q", c.ID)
		}
		byID[c.ID] = len(all)
		all = append(all, c)
		return nil
	}
	for _, c := range s.Topology.Cameras {
		if err := add(c); err != nil {
			return nil, nil, err
		}
	}
	for _, ev := range s.sortedTimeline() {
		if ev.Do == KindCameraJoin {
			if ev.Join == nil {
				return nil, nil, fmt.Errorf("scenario: camera_join at %s needs a join camera", time.Duration(ev.At))
			}
			if err := add(*ev.Join); err != nil {
				return nil, nil, err
			}
		}
	}
	return all, byID, nil
}

// sortedTimeline returns the events in clock order (stable on ties).
func (s *Scenario) sortedTimeline() []Event {
	out := append([]Event{}, s.Timeline...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// SortedTimeline returns the timeline in clock order (stable on ties) —
// the playback order every runner uses.
func (s *Scenario) SortedTimeline() []Event { return s.sortedTimeline() }

// Cameras returns every camera the scenario ever runs — topology cameras
// first, then joins in timeline order — and the id → index map. The index
// is the camera's deterministic identity: its default seed offset, and
// its logical shard in sharded scenarios.
func (s *Scenario) Cameras() ([]Camera, map[string]int, error) { return s.cameraSet() }

// ProfileFor resolves a camera's video profile by its declared name.
func ProfileFor(name string) (video.Profile, error) { return profileByName(name) }

// CameraSeed is the deterministic seed for one of the scenario's cameras:
// the camera's own, or the scenario seed (default 42) plus the camera's
// index from Cameras.
func (s *Scenario) CameraSeed(cam Camera, index int) int64 {
	if cam.Seed != 0 {
		return cam.Seed
	}
	seed := s.Seed
	if seed == 0 {
		seed = 42
	}
	return seed + int64(index)
}

// Validate checks the scenario for structural errors: unknown references,
// bad knobs, events that need machinery the topology doesn't provide. A
// valid scenario builds and runs.
func (s *Scenario) Validate() error {
	if s.Version != 0 && s.Version != CurrentVersion {
		return fmt.Errorf("scenario: version %d not supported (this build reads version %d)", s.Version, CurrentVersion)
	}
	t := s.Topology
	if len(t.Edges) == 0 {
		return fmt.Errorf("scenario: at least one edge is required")
	}
	if len(t.Cameras) == 0 {
		return fmt.Errorf("scenario: at least one camera is required")
	}
	edgeIdx := map[string]bool{}
	for _, e := range t.Edges {
		if e.ID == "" {
			return fmt.Errorf("scenario: every edge needs an id")
		}
		if edgeIdx[e.ID] {
			return fmt.Errorf("scenario: duplicate edge %q", e.ID)
		}
		edgeIdx[e.ID] = true
	}
	switch t.Protocol {
	case "", "ms-ia", "ms-sr":
	default:
		return fmt.Errorf("scenario: unknown protocol %q (want ms-ia or ms-sr)", t.Protocol)
	}
	if t.CrossEdgeFraction < 0 || t.CrossEdgeFraction > 1 {
		return fmt.Errorf("scenario: cross_edge_fraction %g outside [0, 1]", t.CrossEdgeFraction)
	}
	if t.ZipfSkew < 0 || t.OpCost < 0 || t.WorkloadKeys < 0 || t.CheckpointEvery < 0 || t.ReplayCost < 0 {
		return fmt.Errorf("scenario: negative knob (zipf_skew, op_cost, workload_keys, checkpoint_every, replay_cost must be ≥ 0)")
	}
	if t.Graph != nil {
		if err := t.Graph.Validate(len(t.Edges)); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}

	sharded := s.Sharded()
	cams, camIdx, err := s.cameraSet()
	if err != nil {
		return err
	}
	joinAt := map[string]Duration{}
	for _, ev := range s.sortedTimeline() {
		if ev.Do == KindCameraJoin && ev.Join != nil {
			joinAt[ev.Join.ID] = ev.At
		}
	}
	for _, c := range cams {
		if _, err := profileByName(c.Profile); err != nil {
			return fmt.Errorf("camera %q: %w", c.ID, err)
		}
		if c.Frames < 0 {
			return fmt.Errorf("scenario: camera %q frames must be ≥ 0", c.ID)
		}
		if c.Edge != "" && !edgeIdx[c.Edge] {
			return fmt.Errorf("scenario: camera %q placed on unknown edge %q", c.ID, c.Edge)
		}
		if sharded && c.Edge == "" {
			return fmt.Errorf("scenario: camera %q needs an edge: a sharded scenario pins every camera so its shard has a home", c.ID)
		}
	}

	// Retirements are permanent: later events may not target a retired
	// edge, and at least one edge must outlive the timeline.
	retireAt := map[string]Duration{}
	for _, ev := range s.sortedTimeline() {
		if ev.Do != KindEdgeRetire {
			continue
		}
		if !edgeIdx[ev.Edge] {
			return fmt.Errorf("scenario: edge_retire at %s references unknown edge %q", time.Duration(ev.At), ev.Edge)
		}
		if len(t.Edges) < 2 {
			return fmt.Errorf("scenario: edge_retire at %s needs somewhere to drain to — the topology declares only one edge", time.Duration(ev.At))
		}
		if _, dup := retireAt[ev.Edge]; dup {
			return fmt.Errorf("scenario: edge %q retired twice", ev.Edge)
		}
		retireAt[ev.Edge] = ev.At
	}
	if len(retireAt) > 0 && len(retireAt) >= len(t.Edges) {
		return fmt.Errorf("scenario: the timeline retires every edge — at least one must remain to host the fleet")
	}
	retiredBy := func(edge string, at Duration) bool {
		r, ok := retireAt[edge]
		return ok && at >= r
	}

	camRef := func(ev Event, id string) error {
		i, ok := camIdx[id]
		if !ok {
			return fmt.Errorf("scenario: %s at %s references unknown camera %q", ev.Do, time.Duration(ev.At), id)
		}
		if at, joins := joinAt[id]; joins && ev.At < at && i >= len(t.Cameras) {
			return fmt.Errorf("scenario: %s at %s references camera %q before it joins at %s", ev.Do, time.Duration(ev.At), id, time.Duration(at))
		}
		return nil
	}
	edgeRef := func(ev Event, id string) error {
		if !edgeIdx[id] {
			return fmt.Errorf("scenario: %s at %s references unknown edge %q", ev.Do, time.Duration(ev.At), id)
		}
		return nil
	}

	for _, ev := range s.Timeline {
		if ev.At < 0 {
			return fmt.Errorf("scenario: %s scheduled at negative time %s", ev.Do, time.Duration(ev.At))
		}
		switch ev.Do {
		case KindCameraJoin:
			if ev.Join == nil {
				return fmt.Errorf("scenario: camera_join at %s needs a join camera", time.Duration(ev.At))
			}
			if ev.Join.Edge != "" && retiredBy(ev.Join.Edge, ev.At) {
				return fmt.Errorf("scenario: camera %q joins at %s pinned to edge %q, which retires at %s",
					ev.Join.ID, time.Duration(ev.At), ev.Join.Edge, time.Duration(retireAt[ev.Join.Edge]))
			}
		case KindCameraLeave:
			if err := camRef(ev, ev.Camera); err != nil {
				return err
			}
		case KindMigrateCamera:
			if err := camRef(ev, ev.Camera); err != nil {
				return err
			}
			if err := edgeRef(ev, ev.To); err != nil {
				return err
			}
			if retiredBy(ev.To, ev.At) {
				return fmt.Errorf("scenario: migrate_camera at %s targets edge %q, which retires at %s",
					time.Duration(ev.At), ev.To, time.Duration(retireAt[ev.To]))
			}
		case KindWorkloadShift:
			if ev.Camera != "" {
				if err := camRef(ev, ev.Camera); err != nil {
					return err
				}
			}
			if ev.Rate == nil && ev.CrossEdgeFraction == nil && ev.ZipfSkew == nil {
				return fmt.Errorf("scenario: workload_shift at %s changes nothing (set rate, cross_edge_fraction, or zipf_skew)", time.Duration(ev.At))
			}
			if ev.Rate != nil && *ev.Rate <= 0 {
				return fmt.Errorf("scenario: workload_shift rate must be > 0, got %g", *ev.Rate)
			}
			if ev.CrossEdgeFraction != nil && (*ev.CrossEdgeFraction < 0 || *ev.CrossEdgeFraction > 1) {
				return fmt.Errorf("scenario: workload_shift cross_edge_fraction %g outside [0, 1]", *ev.CrossEdgeFraction)
			}
			if ev.ZipfSkew != nil && *ev.ZipfSkew < 0 {
				return fmt.Errorf("scenario: workload_shift zipf_skew must be ≥ 0, got %g", *ev.ZipfSkew)
			}
			if (ev.CrossEdgeFraction != nil || ev.ZipfSkew != nil) && !sharded {
				return fmt.Errorf("scenario: workload_shift at %s reshapes sharded keys, but the scenario is not sharded", time.Duration(ev.At))
			}
		case KindEdgeCrash:
			if err := edgeRef(ev, ev.Edge); err != nil {
				return err
			}
		case KindEdgeRetire:
			// Fully validated with the retirement rules above.
		case KindTwoPCCrash:
			if err := edgeRef(ev, ev.Edge); err != nil {
				return err
			}
			if !sharded {
				return fmt.Errorf("scenario: twopc_crash at %s needs durable partitions — only a sharded fleet runs 2PC rounds to crash inside (set topology.sharded, cross_edge_fraction, or durable)", time.Duration(ev.At))
			}
			switch ev.Point {
			case PointParticipantPrepared, PointAfterPrepare, PointAfterDecision:
			default:
				return fmt.Errorf("scenario: twopc_crash at %s: unknown point %q (want %s, %s, or %s)",
					time.Duration(ev.At), ev.Point, PointParticipantPrepared, PointAfterPrepare, PointAfterDecision)
			}
			if ev.Round < 0 {
				return fmt.Errorf("scenario: twopc_crash round must be ≥ 0, got %d", ev.Round)
			}
		case KindLinkFault:
			if err := edgeRef(ev, ev.A); err != nil {
				return err
			}
			if ev.B != "cloud" {
				if err := edgeRef(ev, ev.B); err != nil {
					return err
				}
				if ev.A == ev.B {
					return fmt.Errorf("scenario: link_fault at %s partitions %q from itself", time.Duration(ev.At), ev.A)
				}
				if !sharded {
					return fmt.Errorf("scenario: link_fault between edges needs a sharded fleet (unsharded edges share no peer links); fault the cloud uplink with b: \"cloud\" instead")
				}
			}
		case KindCheckpoint:
			if ev.Edge != "" {
				if err := edgeRef(ev, ev.Edge); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("scenario: unknown event kind %q at %s", ev.Do, time.Duration(ev.At))
		}
	}
	return nil
}
