// Versioned JSON encoding of scenarios. Version 1 is the current (and
// first) format; Decode rejects other versions outright and unknown fields
// loudly, because a silently-ignored typo in a scenario file would change
// what the experiment measures.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration is a time.Duration that encodes as a human-readable string
// ("80ms", "1m30s"); decoding also accepts a bare number of nanoseconds.
type Duration time.Duration

// MarshalJSON encodes the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON decodes a duration string or a nanosecond count.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err == nil {
		*d = Duration(n)
		return nil
	}
	return fmt.Errorf("scenario: duration must be a string like \"80ms\" or a nanosecond count, got %s", bytes.TrimSpace(b))
}

// Decode parses and validates a version-1 scenario document.
func Decode(data []byte) (*Scenario, error) {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if probe.Version != CurrentVersion {
		return nil, fmt.Errorf("scenario: version %d not supported (this build reads version %d; add \"version\": %d)",
			probe.Version, CurrentVersion, CurrentVersion)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Scenario{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Encode renders the scenario as indented version-1 JSON (validating it
// first — an unencodable scenario is a bug worth failing loudly on).
func (s *Scenario) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := *s
	if out.Version == 0 {
		out.Version = CurrentVersion
	}
	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return append(b, '\n'), nil
}

// Load reads and decodes a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
