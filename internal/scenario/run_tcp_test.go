package scenario

import (
	"testing"
	"time"
)

// tcpScenario is a small sharded fleet that exercises every counter the
// acceptance criteria name: everything validates (θ interval [0,1]), the
// batcher is provisioned to overload (MaxBatch 1, MaxPending 1, starved
// cloud) so admission control sheds, half the keys cross edges so 2PC
// runs, and the timeline severs one cloud uplink mid-run — a fault that
// can only act at the transport layer on TCP.
func tcpScenario() *Scenario {
	heal := Duration(1500 * time.Millisecond)
	return &Scenario{
		Name: "tcp-loopback",
		Seed: 42,
		Topology: Topology{
			Edges: []Edge{{ID: "west"}, {ID: "east"}},
			Cameras: []Camera{
				{ID: "c0", Profile: "street-vehicles", Edge: "west", Frames: 16},
				{ID: "c1", Profile: "street-person", Edge: "east", Frames: 16},
			},
			CrossEdgeFraction: 0.5,
			ThetaL:            0.001, // validate every frame with a visible label
			ThetaU:            0.999,
			Batcher:           Batcher{MaxBatch: 1, MaxPending: 1, CloudSpeed: 0.05},
		},
		Timeline: []Event{
			{At: Duration(200 * time.Millisecond), Do: KindLinkFault, A: "west", B: "cloud", Heal: heal},
		},
	}
}

// TestScenarioRunsOnLoopbackTCP is the acceptance check for the unified
// runtime: the same scenario type that drives the simulated fleet runs
// over loopback TCP sockets, completes, and reports populated validated /
// shed / 2PC counters, with the timeline link fault demonstrably acting at
// the transport layer (a connection teardown and blackholed messages).
func TestScenarioRunsOnLoopbackTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP run in -short mode")
	}
	s := tcpScenario()
	rep, err := RunWith(s, Options{Transport: TransportTCP, TimeScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 32 {
		t.Errorf("fleet processed %d frames, want 32", rep.Frames)
	}
	if rep.Validated == 0 {
		t.Error("no frame validated over TCP")
	}
	if rep.Shed == 0 {
		t.Error("overloaded batcher shed nothing — the degradation path was not exercised")
	}
	if !rep.Sharded {
		t.Error("report does not mark the fleet sharded")
	}
	if got := rep.TwoPC.CrossEdgeCommits + rep.TwoPC.RemoteCommits + rep.TwoPC.LocalCommits; got == 0 {
		t.Error("no 2PC/commit activity counted — cross-edge transactions did not run")
	}
	if rep.Transport == nil {
		t.Fatal("report carries no transport section for a TCP run")
	}
	if rep.Transport.Name != "tcp" {
		t.Errorf("transport name %q, want tcp", rep.Transport.Name)
	}
	if rep.Transport.Messages == 0 || rep.Transport.Bytes == 0 {
		t.Errorf("no traffic crossed the sockets: %+v", rep.Transport)
	}
	// The timeline link fault must have acted at the transport: the west
	// uplink's connection was torn down at least once.
	if rep.Transport.Severs == 0 {
		t.Errorf("link fault caused no transport teardown: %+v", rep.Transport)
	}
	if rep.Dynamic == nil || rep.Dynamic.CloudLinkOutages != 1 {
		t.Errorf("cloud-link outage not counted: %+v", rep.Dynamic)
	}
}

// TestScenarioRunsOnBothTransports runs one scenario value through both
// deployments back to back — the tentpole contract in one assertion: the
// sim run is deterministic (two replays byte-identical) and the TCP run of
// the very same scenario completes with the same fleet shape.
func TestScenarioRunsOnBothTransports(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP run in -short mode")
	}
	s := tcpScenario()
	sim1, err := RunWith(s, Options{Transport: TransportSim})
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if sim1.Format() != sim2.Format() {
		t.Fatal("sim replay of the scenario is not byte-identical")
	}
	if sim1.Transport != nil {
		t.Error("sim report grew a transport section — the golden format must not drift")
	}
	tcp, err := RunWith(s, Options{Transport: TransportTCP, TimeScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(tcp.Cameras) != len(sim1.Cameras) || tcp.Frames != sim1.Frames {
		t.Errorf("fleet shape differs across transports: tcp %d cams / %d frames, sim %d / %d",
			len(tcp.Cameras), tcp.Frames, len(sim1.Cameras), sim1.Frames)
	}
}

// TestRunWithRejectsUnknownTransport pins the error path.
func TestRunWithRejectsUnknownTransport(t *testing.T) {
	if _, err := RunWith(tcpScenario(), Options{Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
