package smoothing

import (
	"testing"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/lock"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

func det(track int, label string, conf float64) detect.Detection {
	return detect.Detection{
		TrackID: track, Label: label, Confidence: conf,
		Box: video.Rect{X: 0.1 * float64(track), Y: 0.1, W: 0.1, H: 0.1},
	}
}

func TestCorrectedLabelAppliedToLaterFrames(t *testing.T) {
	c := New()
	edge := []detect.Detection{det(7, "cat", 0.55)}
	matches := []core.LabelMatch{{
		Case: core.MatchCorrected, EdgeIdx: 0,
		Cloud: det(7, "dog", 0.95),
	}}
	c.Learn(1, matches, edge)

	out := c.Apply(2, []detect.Detection{det(7, "cat", 0.52)})
	if len(out) != 1 {
		t.Fatalf("out = %d detections", len(out))
	}
	if out[0].Label != "dog" {
		t.Errorf("label = %q, want cloud-corrected dog", out[0].Label)
	}
	if out[0].Confidence < 0.9 {
		t.Errorf("confidence = %.2f, want boosted above the keep threshold", out[0].Confidence)
	}
}

func TestRejectedTrackSuppressedAfterTwoStrikes(t *testing.T) {
	c := New()
	edge := []detect.Detection{det(3, "dog", 0.5)}
	reject := []core.LabelMatch{{Case: core.MatchErroneous, EdgeIdx: 0}}
	c.Learn(1, reject, edge)
	// One rejection is not enough: greedy matching sometimes leaves a
	// real object unmatched, so a single strike must pass through.
	if out := c.Apply(2, []detect.Detection{det(3, "dog", 0.5)}); len(out) != 1 {
		t.Fatal("track suppressed after a single rejection")
	}
	c.Learn(2, reject, edge)
	out := c.Apply(3, []detect.Detection{det(3, "dog", 0.5), det(4, "dog", 0.6)})
	if len(out) != 1 || out[0].TrackID != 4 {
		t.Fatalf("suppression failed after two strikes: %+v", out)
	}
}

func TestUnknownAndFalsePositiveTracksPassThrough(t *testing.T) {
	c := New()
	in := []detect.Detection{det(9, "dog", 0.5), det(0, "clutter", 0.2)}
	out := c.Apply(1, in)
	if len(out) != 2 {
		t.Fatalf("out = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("detection %d mutated without memory", i)
		}
	}
}

func TestMemoryExpiresAfterTTL(t *testing.T) {
	c := New()
	c.TTL = 5
	edge := []detect.Detection{det(2, "cat", 0.5)}
	c.Learn(1, []core.LabelMatch{{Case: core.MatchCorrected, EdgeIdx: 0, Cloud: det(2, "dog", 0.9)}}, edge)
	if got := c.Apply(3, []detect.Detection{det(2, "cat", 0.5)}); got[0].Label != "dog" {
		t.Fatal("memory inactive before TTL")
	}
	if got := c.Apply(20, []detect.Detection{det(2, "cat", 0.5)}); got[0].Label != "cat" {
		t.Fatal("memory survived past TTL")
	}
	if n := c.Tracked(20); n != 0 {
		t.Errorf("Tracked = %d after TTL", n)
	}
}

func TestMinHitsGate(t *testing.T) {
	c := New()
	c.MinHits = 2
	edge := []detect.Detection{det(5, "cat", 0.5)}
	m := []core.LabelMatch{{Case: core.MatchCorrected, EdgeIdx: 0, Cloud: det(5, "dog", 0.9)}}
	c.Learn(1, m, edge)
	if got := c.Apply(2, []detect.Detection{det(5, "cat", 0.5)}); got[0].Label != "cat" {
		t.Fatal("memory applied before MinHits")
	}
	c.Learn(2, m, edge)
	if got := c.Apply(3, []detect.Detection{det(5, "cat", 0.5)}); got[0].Label != "dog" {
		t.Fatal("memory not applied after MinHits")
	}
}

func TestVerdictFlipResetsVotes(t *testing.T) {
	c := New()
	c.MinHits = 2
	edge := []detect.Detection{det(5, "cat", 0.5)}
	c.Learn(1, []core.LabelMatch{{Case: core.MatchCorrected, EdgeIdx: 0, Cloud: det(5, "dog", 0.9)}}, edge)
	// The cloud changes its mind: one vote for sheep must not apply yet.
	c.Learn(2, []core.LabelMatch{{Case: core.MatchCorrected, EdgeIdx: 0, Cloud: det(5, "sheep", 0.9)}}, edge)
	if got := c.Apply(3, []detect.Detection{det(5, "cat", 0.5)}); got[0].Label != "cat" {
		t.Fatalf("flipped memory applied with a single vote: %q", got[0].Label)
	}
}

func TestReset(t *testing.T) {
	c := New()
	edge := []detect.Detection{det(1, "cat", 0.5)}
	c.Learn(1, []core.LabelMatch{{Case: core.MatchCorrected, EdgeIdx: 0, Cloud: det(1, "dog", 0.9)}}, edge)
	c.Reset()
	if got := c.Apply(2, []detect.Detection{det(1, "cat", 0.5)}); got[0].Label != "cat" {
		t.Fatal("memory survived Reset")
	}
}

// TestSmoothingImprovesPipeline compares the corrector fairly: smoothing
// converts cloud validations into durable local knowledge, so at the SAME
// thresholds it must cut bandwidth sharply, and against a baseline tuned
// to the same (reduced) bandwidth it must win on accuracy. (At identical
// thresholds smoothing trades some accuracy for bandwidth — every skipped
// validation forgoes a frame-perfect correction — which is the economics
// the paper's footnote describes.)
func TestSmoothingImprovesPipeline(t *testing.T) {
	prof := video.ParkDog()
	frames := video.NewGenerator(prof, 11).Generate(100)
	runWith := func(sm core.Smoother, thetaL, thetaU float64) core.Summary {
		clk := vclock.NewSim()
		st := store.New()
		mgr := txn.NewManager(clk, st, lock.NewManager(clk))
		cloud := detect.YOLOv3Sim(detect.YOLO416, 42)
		p, err := core.New(core.Config{
			Clock:      clk,
			EdgeModel:  detect.TinyYOLOSim(42),
			CloudModel: cloud,
			ThetaL:     thetaL, ThetaU: thetaU,
			Source:   core.NewWorkloadSource(500, 7),
			CC:       &txn.MSIA{M: mgr},
			Mgr:      mgr,
			Smoother: sm,
		})
		if err != nil {
			t.Fatal(err)
		}
		outs := p.ProcessVideo(frames)
		truth := core.TruthFromModel(cloud, frames)
		return core.Summarize(prof.Name, core.ModeCroesus, prof.QueryClass, outs, truth, 0.10)
	}

	const thetaL, thetaU = 0.40, 0.62
	base := runWith(nil, thetaL, thetaU)
	smoothed := runWith(New(), thetaL, thetaU)
	if smoothed.BU >= base.BU-0.05 {
		t.Errorf("smoothing did not reduce bandwidth: %.3f vs %.3f", smoothed.BU, base.BU)
	}

	// Baseline at matched bandwidth: narrow the validate interval until
	// the plain pipeline sends about as many frames as the smoothed one.
	matched := base
	bestGap := 2.0
	for _, pair := range [][2]float64{{0.40, 0.45}, {0.45, 0.50}, {0.40, 0.50}, {0.50, 0.55}, {0.45, 0.55}, {0.40, 0.42}} {
		s := runWith(nil, pair[0], pair[1])
		if gap := abs(s.BU - smoothed.BU); gap < bestGap {
			bestGap, matched = gap, s
		}
	}
	if bestGap > 0.2 {
		t.Fatalf("no baseline pair matched smoothed BU %.3f (best gap %.3f)", smoothed.BU, bestGap)
	}
	if smoothed.F1Final <= matched.F1Final {
		t.Errorf("at matched BU (≈%.2f vs %.2f), smoothing F %.3f not above baseline %.3f",
			smoothed.BU, matched.BU, smoothed.F1Final, matched.F1Final)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
