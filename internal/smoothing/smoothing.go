// Package smoothing implements the correction feedback loop the paper
// sketches in §2.1's footnote: "In a real application, the corrected
// information would also influence the small model — via retraining and
// heuristics such as smoothing — so that the error would not be incurred
// in the following frames."
//
// The Corrector is such a heuristic: it remembers, per object track, what
// the cloud model concluded (confirmed label, corrected label, or
// rejection as a false positive) and rewrites the edge model's future
// detections of the same track accordingly. Corrected tracks are re-issued
// with boosted confidence, so bandwidth thresholding stops re-validating
// objects the cloud has already settled — accuracy rises and bandwidth
// falls at the same thresholds. Track identity stands in for the output of
// a real-time tracker (SORT and friends) that any production edge pipeline
// already runs.
package smoothing

import (
	"sync"

	"croesus/internal/core"
	"croesus/internal/detect"
)

// memory is what the corrector knows about one track.
type memory struct {
	label      string // cloud-settled label ("" when only rejected)
	rejected   bool   // cloud found nothing there
	hits       int    // label reinforcements
	rejectHits int    // rejection reinforcements
	lastFrame  int
}

// Corrector is a per-track label smoother. It is safe for concurrent use.
type Corrector struct {
	// TTL is how many frames a memory survives without reinforcement.
	TTL int
	// BoostTo is the confidence assigned to detections rewritten from a
	// cloud-settled memory (high enough to clear the keep threshold).
	BoostTo float64
	// MinHits is how many consistent cloud verdicts a track needs before
	// a label rewrite is applied.
	MinHits int
	// RejectHits is how many rejections a track needs before it is
	// suppressed. Rejections are noisier than corrections (greedy box
	// matching occasionally leaves a real object unmatched), so the
	// default demands more evidence.
	RejectHits int

	mu    sync.Mutex
	track map[int]*memory
}

// New returns a Corrector with sensible defaults.
func New() *Corrector {
	return &Corrector{TTL: 40, BoostTo: 0.95, MinHits: 1, RejectHits: 2, track: make(map[int]*memory)}
}

// Learn ingests one validated frame's match results: for every edge label
// matched against the cloud labels, remember the verdict keyed by track.
func (c *Corrector) Learn(frameIdx int, matches []core.LabelMatch, edge []detect.Detection) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range matches {
		if m.EdgeIdx < 0 || m.EdgeIdx >= len(edge) {
			continue
		}
		trackID := edge[m.EdgeIdx].TrackID
		if trackID == 0 {
			continue // false positives have no stable identity
		}
		mem, ok := c.track[trackID]
		if !ok {
			mem = &memory{}
			c.track[trackID] = mem
		}
		mem.lastFrame = frameIdx
		switch m.Case {
		case core.MatchCorrect, core.MatchCorrected:
			if mem.label == m.Cloud.Label {
				mem.hits++
			} else {
				mem.label = m.Cloud.Label
				mem.hits = 1
			}
			mem.rejected = false
		case core.MatchErroneous:
			if mem.rejected {
				mem.rejectHits++
			} else {
				mem.rejected = true
				mem.label = ""
				mem.hits = 0
				mem.rejectHits = 1
			}
		}
	}
}

// Apply rewrites a frame's edge detections using the accumulated memories:
// settled tracks get the cloud's label at boosted confidence, rejected
// tracks are suppressed. Unknown tracks pass through untouched.
func (c *Corrector) Apply(frameIdx int, dets []detect.Detection) []detect.Detection {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]detect.Detection, 0, len(dets))
	for _, d := range dets {
		mem, ok := c.track[d.TrackID]
		if !ok || d.TrackID == 0 || frameIdx-mem.lastFrame > c.TTL {
			out = append(out, d)
			continue
		}
		if mem.rejected && mem.rejectHits >= c.RejectHits {
			continue // the cloud repeatedly said there is nothing here
		}
		if mem.label != "" && mem.hits >= c.MinHits {
			d.Label = mem.label
			if d.Confidence < c.BoostTo {
				d.Confidence = c.BoostTo
			}
		}
		out = append(out, d)
	}
	return out
}

// Tracked reports how many track memories are live at the given frame.
func (c *Corrector) Tracked(frameIdx int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, mem := range c.track {
		if frameIdx-mem.lastFrame <= c.TTL {
			n++
		}
	}
	return n
}

// Reset forgets everything.
func (c *Corrector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.track = make(map[int]*memory)
}

// Corrector implements core.Smoother.
var _ core.Smoother = (*Corrector)(nil)
