package experiments

import "testing"

// TestGraphDepthSmoke runs the graph-depth sweep at reduced scale: the
// table must carry every (protocol, depth) row and the MS-SR final p50
// must sit at or above MS-IA's once the graph is deeper than two
// sections — the lock-hold cost the experiment exists to show.
func TestGraphDepthSmoke(t *testing.T) {
	tb := GraphDepth(Opts{Frames: 60})
	if len(tb.Rows) != 8 {
		t.Fatalf("want 8 rows (2 protocols × 4 depths), got %d", len(tb.Rows))
	}
	t.Log("\n" + tb.Format())
}
