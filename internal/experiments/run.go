package experiments

import (
	"math"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/lock"
	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/threshold"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// ccKind selects the concurrency control protocol for a run.
type ccKind int

const (
	ccMSIA ccKind = iota
	ccMSSRWait
	ccMSSRNoWait
)

// runSpec describes one pipeline execution.
type runSpec struct {
	prof      video.Profile
	mode      core.Mode
	thetaL    float64
	thetaU    float64
	edgeSpeed float64 // 0 → 1.0 (t3a.xlarge); t3a.small ≈ 0.45
	sameSite  bool    // edge and cloud co-located
	cloudSize detect.YOLOSize
	preproc   netsim.Preprocessor
	cc        ccKind
	opCost    time.Duration
}

// runResult bundles everything an experiment may need from one run.
type runResult struct {
	summary  core.Summary
	outcomes []core.FrameOutcome
	locks    *lock.Manager
	mgr      *txn.Manager
	edgeLink *netsim.Link
	cloud    *netsim.Link
}

// run executes one pipeline configuration on a fresh virtual clock.
func run(o Opts, s runSpec) runResult {
	o = o.defaults()
	if s.cloudSize == 0 {
		s.cloudSize = detect.YOLO416
	}
	if s.edgeSpeed == 0 {
		s.edgeSpeed = 1.0
	}
	frames := video.NewGenerator(s.prof, o.Seed).Generate(o.Frames)

	clk := vclock.NewSim()
	st := store.New()
	locks := lock.NewManager(clk)
	mgr := txn.NewManager(clk, st, locks)
	var cc txn.CC
	switch s.cc {
	case ccMSSRWait:
		cc = &txn.MSSR{M: mgr, Policy: txn.Wait}
	case ccMSSRNoWait:
		cc = &txn.MSSR{M: mgr, Policy: txn.NoWait}
	default:
		cc = &txn.MSIA{M: mgr}
	}
	source := core.NewWorkloadSource(1000, o.Seed)
	source.Clk = clk
	source.OpCost = s.opCost
	if source.OpCost == 0 {
		// Sections cost a little CPU, so the per-frame transaction
		// latencies show up as the "very minute" bars of Figure 2.
		source.OpCost = 50 * time.Microsecond
	}

	edgeCloud := netsim.EdgeCloudCrossCountry()
	if s.sameSite {
		edgeCloud = netsim.EdgeCloudSameSite()
	}
	clientEdge := netsim.ClientEdgeLink()

	cloudModel := detect.YOLOv3Sim(s.cloudSize, o.Seed)
	cfg := core.Config{
		Clock:      clk,
		Mode:       s.mode,
		EdgeModel:  detect.TinyYOLOSim(o.Seed),
		CloudModel: cloudModel,
		EdgeSpeed:  s.edgeSpeed,
		ClientEdge: clientEdge,
		EdgeCloud:  edgeCloud,
		Preproc:    s.preproc,
		ThetaL:     s.thetaL,
		ThetaU:     s.thetaU,
		Source:     source,
		CC:         cc,
		Mgr:        mgr,
	}
	p, err := core.New(cfg)
	if err != nil {
		panic("experiments: bad run spec: " + err.Error())
	}
	outs := p.ProcessVideo(frames)
	truth := core.TruthFromModel(cloudModel, frames)
	sum := core.Summarize(s.prof.Name, s.mode, s.prof.QueryClass, outs, truth, p.Config().OverlapMin)
	return runResult{
		summary:  sum,
		outcomes: outs,
		locks:    locks,
		mgr:      mgr,
		edgeLink: clientEdge,
		cloud:    edgeCloud,
	}
}

// evaluator precomputes the threshold evaluator for one video and cloud
// model.
func evaluator(o Opts, prof video.Profile, size detect.YOLOSize) *threshold.Evaluator {
	o = o.defaults()
	frames := video.NewGenerator(prof, o.Seed).Generate(o.Frames)
	return threshold.NewEvaluator(frames, detect.TinyYOLOSim(o.Seed), detect.YOLOv3Sim(size, o.Seed), prof.QueryClass, 0.10)
}

// pairForBU scans the grid for the threshold pair whose bandwidth
// utilization is closest to the target, breaking ties toward higher
// F-score — how the Figure 2 BU levels are configured.
func pairForBU(e *threshold.Evaluator, target, step float64) (l, u float64) {
	bestDist := math.Inf(1)
	bestF := -1.0
	for lo := 0.0; lo < 1.0+1e-9; lo += step {
		for hi := lo; hi < 1.0+1e-9; hi += step {
			f1, bu := e.Evaluate(lo, hi)
			dist := math.Abs(bu - target)
			if dist < bestDist-1e-12 || (math.Abs(dist-bestDist) <= 1e-12 && f1 > bestF) {
				bestDist, bestF = dist, f1
				l, u = lo, hi
			}
		}
	}
	return l, u
}

// meanCloudDetect averages cloud detection latency over the frames that
// actually went to the cloud.
func meanCloudDetect(outs []core.FrameOutcome) time.Duration {
	var sum time.Duration
	n := 0
	for i := range outs {
		if outs[i].SentToCloud {
			sum += outs[i].Breakdown.CloudDetect
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// fourVideos returns the paper's v1..v4.
func fourVideos() []video.Profile {
	return []video.Profile{
		video.ParkDog(),
		video.StreetVehicles(),
		video.AirportRunway(),
		video.MallSurveillance(),
	}
}
