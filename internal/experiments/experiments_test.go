package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// quick returns small-but-meaningful options so the full suite stays fast.
func quick() Opts {
	return Opts{Frames: 60, Seed: 42, Mu: 0.80, GridStep: 0.1}
}

func cell(t Table, row int, header string) string {
	for i, h := range t.Header {
		if h == header {
			return t.Rows[row][i]
		}
	}
	return ""
}

func parseMs(s string) float64 {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func parsePct(s string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	return v / 100
}

func TestTableFormatAndMarkdown(t *testing.T) {
	tab := Table{
		ID: "x", Title: "T", Header: []string{"a", "bb"},
		Rows:  [][]string{{"1", "2"}},
		Notes: []string{"n"},
	}
	txt := tab.Format()
	if !strings.Contains(txt, "== x — T ==") || !strings.Contains(txt, "note: n") {
		t.Errorf("Format output missing parts:\n%s", txt)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("Markdown output missing parts:\n%s", md)
	}
}

func TestIDsAndByID(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Fatalf("IDs = %d, want 21", len(ids))
	}
	if _, ok := ByID("nope", quick()); ok {
		t.Error("unknown ID accepted")
	}
	tab, ok := ByID("table2", quick())
	if !ok || tab.ID != "table2" {
		t.Errorf("ByID(table2) = %v %v", tab.ID, ok)
	}
}

func TestFigure2Shape(t *testing.T) {
	tab := Figure2(quick())
	// 4 videos × (edge + 5 BU levels + cloud) = 28 rows.
	if len(tab.Rows) != 28 {
		t.Fatalf("rows = %d, want 28", len(tab.Rows))
	}
	// For every video: edge is fastest, cloud most accurate, croesus BU
	// increases monotonically with the target.
	for v := 0; v < 4; v++ {
		base := v * 7
		edgeLat := parseMs(cell(tab, base, "final ms"))
		cloudLat := parseMs(cell(tab, base+6, "final ms"))
		cloudF := cell(tab, base+6, "F-score")
		if edgeLat >= cloudLat {
			t.Errorf("video %d: edge latency %.0f not below cloud %.0f", v, edgeLat, cloudLat)
		}
		if cloudF != "1.000" {
			t.Errorf("video %d: cloud F = %s, want 1.000", v, cloudF)
		}
		prevBU := -1.0
		for i := 1; i <= 5; i++ {
			bu := parsePct(cell(tab, base+i, "BU"))
			if bu < prevBU-0.02 {
				t.Errorf("video %d: BU not increasing at level %d (%.2f < %.2f)", v, i, bu, prevBU)
			}
			prevBU = bu
		}
		// Higher BU must not hurt final accuracy much; BU≈100% ≈ cloud.
		fLow := parseFloat(cell(tab, base+1, "F-score"))
		fHigh := parseFloat(cell(tab, base+5, "F-score"))
		if fHigh < fLow-0.02 {
			t.Errorf("video %d: F at full BU (%.3f) below F at 0 BU (%.3f)", v, fHigh, fLow)
		}
	}
}

func parseFloat(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func TestTable1Shape(t *testing.T) {
	tab := Table1(quick())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		croAcc := parseX(cell(tab, i, "acc Croesus"))
		edgeAcc := parseX(cell(tab, i, "acc Edge"))
		if croAcc < edgeAcc-0.01 {
			t.Errorf("%s: croesus accuracy %.2f below edge %.2f", row[0], croAcc, edgeAcc)
		}
		if croAcc < 0.7 {
			t.Errorf("%s: croesus accuracy %.2f too low for µ=0.8 optimum", row[0], croAcc)
		}
	}
	// v3 (airport): edge is already accurate; optimal BU near zero.
	if bu := parsePct(cell(tab, 2, "BU")); bu > 0.3 {
		t.Errorf("airport optimal BU = %.2f, want near 0", bu)
	}
}

func parseX(s string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	return v
}

func TestFigure3Shape(t *testing.T) {
	tab := Figure3(quick())
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(pair string, col string) float64 {
		for i, row := range tab.Rows {
			if row[0] == pair {
				if col == "BU" {
					return parsePct(cell(tab, i, col))
				}
				return parseFloat(cell(tab, i, col))
			}
		}
		t.Fatalf("pair %s not found", pair)
		return 0
	}
	// (0.5,0.5): empty validate interval → BU 0.
	if bu := get("(0.5,0.5)", "BU"); bu != 0 {
		t.Errorf("(0.5,0.5) BU = %.2f, want 0", bu)
	}
	// Widening θU raises BU.
	if get("(0.5,0.6)", "BU") >= get("(0.5,0.9)", "BU") {
		t.Error("BU not increasing with θU")
	}
	// The paper's key observation: (0.5,0.6) validates the error-dense
	// band and beats (0.6,0.7) on accuracy.
	if get("(0.5,0.6)", "F-score") <= get("(0.6,0.7)", "F-score") {
		t.Errorf("F(0.5,0.6)=%.3f not above F(0.6,0.7)=%.3f",
			get("(0.5,0.6)", "F-score"), get("(0.6,0.7)", "F-score"))
	}
}

func TestTable2Shape(t *testing.T) {
	tab := Table2(quick())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Detection latency must increase with model size; F stays in band.
	prev := -1.0
	for i, row := range tab.Rows {
		lat := parseFloat(cell(tab, i, "detect latency s"))
		if lat <= prev {
			t.Errorf("row %v: detect latency %.2f not increasing", row[0], lat)
		}
		prev = lat
		if f := parseFloat(cell(tab, i, "F-score")); f < 0.7 {
			t.Errorf("%s: F = %.3f below the µ band", row[0], f)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	tab := Figure4(quick())
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	for v := 0; v < 4; v++ {
		base := v * 4
		smallDiff := parseMs(cell(tab, base, "final ms"))
		smallSame := parseMs(cell(tab, base+1, "final ms"))
		regDiff := parseMs(cell(tab, base+2, "final ms"))
		regSame := parseMs(cell(tab, base+3, "final ms"))
		// Same-location must not be slower than different-location for
		// the same machine; regular edge must not be slower than small.
		if smallSame > smallDiff+1 {
			t.Errorf("video %d: same-site slower than cross-country (small edge)", v)
		}
		if regSame > regDiff+1 {
			t.Errorf("video %d: same-site slower than cross-country (regular edge)", v)
		}
		if regDiff > smallDiff+1 {
			t.Errorf("video %d: regular edge slower than small edge", v)
		}
		_ = regSame
	}
}

func TestFigure5Shape(t *testing.T) {
	tab := Figure5(quick())
	// Two videos × 6 θL rows.
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	if len(tab.Notes) < 2 {
		t.Fatal("missing optimizer notes")
	}
	for _, n := range tab.Notes {
		if !strings.Contains(n, "fewer evaluations") {
			t.Errorf("note missing speedup: %s", n)
		}
	}
}

func TestFigure6aShape(t *testing.T) {
	tab := Figure6a(quick())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	msiaHold, err1 := time.ParseDuration(cell(tab, 0, "mean lock hold"))
	mssrHold, err2 := time.ParseDuration(cell(tab, 1, "mean lock hold"))
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable holds: %v %v", err1, err2)
	}
	// The paper's contrast: MS-IA holds locks for milliseconds, MS-SR for
	// hundreds of milliseconds (the cloud round trip). Require at least
	// an order of magnitude.
	if mssrHold < 10*msiaHold {
		t.Errorf("MS-SR hold %v not ≫ MS-IA hold %v", mssrHold, msiaHold)
	}
	if msiaHold > 50*time.Millisecond {
		t.Errorf("MS-IA hold %v not at millisecond scale", msiaHold)
	}
	if mssrHold < 50*time.Millisecond {
		t.Errorf("MS-SR hold %v should approach the cloud path latency", mssrHold)
	}
}

func TestFigure6bShape(t *testing.T) {
	tab := Figure6b(quick())
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prevRate := 2.0
	for i, row := range tab.Rows {
		mssr := parsePct(cell(tab, i, "MS-SR abort rate"))
		msia := parsePct(cell(tab, i, "MS-IA abort rate"))
		if msia != 0 {
			t.Errorf("key range %s: MS-IA abort rate %.2f, want 0", row[0], msia)
		}
		if mssr > prevRate+0.10 {
			t.Errorf("key range %s: abort rate %.2f increased with larger key space", row[0], mssr)
		}
		prevRate = mssr
	}
	// Small hot spot must abort heavily; huge one barely.
	if first := parsePct(cell(tab, 0, "MS-SR abort rate")); first < 0.3 {
		t.Errorf("100-key abort rate %.2f, want significant", first)
	}
	if last := parsePct(cell(tab, 6, "MS-SR abort rate")); last > 0.2 {
		t.Errorf("100k-key abort rate %.2f, want small", last)
	}
}

func TestFigure6cShape(t *testing.T) {
	tab := Figure6c(quick())
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	cloud := parseMs(cell(tab, 0, "final ms"))
	cloudComp := parseMs(cell(tab, 1, "final ms"))
	cloudCompDiff := parseMs(cell(tab, 2, "final ms"))
	// Compression helps, but only a little: detection dominates.
	if cloudComp >= cloud {
		t.Errorf("compression did not improve cloud latency: %.0f vs %.0f", cloudComp, cloud)
	}
	if cloudCompDiff >= cloudComp {
		t.Errorf("difference communication did not help: %.0f vs %.0f", cloudCompDiff, cloudComp)
	}
	if (cloud-cloudCompDiff)/cloud > 0.25 {
		t.Errorf("hybrid techniques improved too much (%.0f → %.0f): detection should dominate", cloud, cloudCompDiff)
	}
	// Traffic must shrink down the rows of each system group.
	mbCloud := parseFloat(cell(tab, 0, "edge-cloud MB"))
	mbComp := parseFloat(cell(tab, 2, "edge-cloud MB"))
	if mbComp >= mbCloud {
		t.Error("preprocessors did not reduce traffic")
	}
}

func TestAblationPolicyShape(t *testing.T) {
	tab := AblationPolicy(quick())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	waitAborts := parsePct(cell(tab, 0, "abort rate"))
	noWaitAborts := parsePct(cell(tab, 1, "abort rate"))
	// Both policies shed load under a hot spot; the structural difference
	// is that only Wait ever queues on locks. (Wait-die can abort more or
	// less than no-wait: waiting stretches lock windows, creating new
	// conflicts even as safe waits avoid some aborts.)
	if waitAborts <= 0 || noWaitAborts <= 0 {
		t.Errorf("expected aborts under contention: wait=%.2f nowait=%.2f", waitAborts, noWaitAborts)
	}
	waitQueued := parseFloat(cell(tab, 0, "lock waits"))
	noWaitQueued := parseFloat(cell(tab, 1, "lock waits"))
	if waitQueued == 0 {
		t.Error("Wait policy never queued on a lock")
	}
	if noWaitQueued != 0 {
		t.Errorf("NoWait policy queued %v times, want 0", noWaitQueued)
	}
}

func TestAblationSequencerShape(t *testing.T) {
	tab := AblationSequencer(quick())
	seqWaits := parseFloat(cell(tab, 0, "lock waits"))
	rawWaits := parseFloat(cell(tab, 1, "lock waits"))
	if seqWaits != 0 {
		t.Errorf("sequencer lock waits = %.0f, want 0", seqWaits)
	}
	if rawWaits == 0 {
		t.Error("unsequenced run should queue on locks")
	}
}

func TestAblationChainShape(t *testing.T) {
	tab := AblationChain(quick())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Both chains must reach decent accuracy; the 3-stage run must stop
	// some frames at the intermediate stage.
	stops := cell(tab, 1, "frames stopped at s0/s1/s2")
	parts := strings.Split(stops, "/")
	if len(parts) != 3 {
		t.Fatalf("stops = %q", stops)
	}
	mid := parseFloat(parts[1])
	if mid == 0 {
		t.Error("no frames terminated at the regional stage")
	}
}

func TestAblationSmoothingShape(t *testing.T) {
	// The corrector needs enough frames to amortize its learning phase;
	// at the 60-frame quick scale it has barely settled any tracks.
	o := quick()
	o.Frames = 140
	tab := AblationSmoothing(o)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	baseBU := parsePct(cell(tab, 0, "BU"))
	smoothBU := parsePct(cell(tab, 1, "BU"))
	smoothF := parseFloat(cell(tab, 1, "F-score"))
	matchedF := parseFloat(cell(tab, 2, "F-score"))
	if smoothBU >= baseBU {
		t.Errorf("smoothing BU %.2f not below baseline %.2f", smoothBU, baseBU)
	}
	if smoothF <= matchedF {
		t.Errorf("at matched BU, smoothing F %.3f not above baseline %.3f", smoothF, matchedF)
	}
}

func TestAblationTwoPCShape(t *testing.T) {
	tab := AblationTwoPC(quick())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	mssrRounds := parseFloat(cell(tab, 0, "2PC rounds"))
	msiaRounds := parseFloat(cell(tab, 1, "2PC rounds"))
	if msiaRounds != 2*mssrRounds {
		t.Errorf("MS-IA rounds %v, want double MS-SR's %v", msiaRounds, mssrRounds)
	}
	if vis := cell(tab, 0, "initial-commit visible early"); !strings.HasPrefix(vis, "0/") {
		t.Errorf("MS-SR early visibility = %s, want 0/n", vis)
	}
	if vis := cell(tab, 1, "initial-commit visible early"); strings.HasPrefix(vis, "0/") {
		t.Errorf("MS-IA early visibility = %s, want all", vis)
	}
}

func TestClusterScaleShape(t *testing.T) {
	tab := ClusterScale(quick())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	prevFPS := 0.0
	for i := range tab.Rows {
		fps, err := strconv.ParseFloat(cell(tab, i, "fps"), 64)
		if err != nil {
			t.Fatalf("row %d: unparseable fps: %v", i, err)
		}
		// Fleet throughput grows with camera count.
		if fps <= prevFPS {
			t.Errorf("row %d: throughput %.1f did not grow past %.1f", i, fps, prevFPS)
		}
		prevFPS = fps
	}
	// Batching amortization: the 16-camera fleet forms real batches.
	mean, _ := strconv.ParseFloat(cell(tab, len(tab.Rows)-1, "mean batch"), 64)
	if mean <= 1.5 {
		t.Errorf("16-camera mean batch %.2f — the batcher never coalesced", mean)
	}
}

func TestCluster2PCShape(t *testing.T) {
	tab := Cluster2PC(quick())
	// 2 protocols × 3 cross-edge fractions.
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for i := range tab.Rows {
		cross, err := strconv.Atoi(cell(tab, i, "x-edge commits"))
		if err != nil {
			t.Fatalf("row %d: unparseable cross-edge commits: %v", i, err)
		}
		frac := parsePct(cell(tab, i, "cross-edge"))
		if frac == 0 && cross != 0 {
			t.Errorf("row %d: %d cross-edge commits at fraction 0", i, cross)
		}
		if frac > 0 && cross == 0 {
			t.Errorf("row %d: no cross-edge commits at fraction %.2f", i, frac)
		}
	}
	// Same workload, same fraction: MS-IA commits atomically twice per
	// cross-edge transaction, MS-SR once — strictly more rounds.
	for off := 1; off < 3; off++ {
		msiaRounds, _ := strconv.Atoi(cell(tab, off, "2PC rounds"))
		mssrRounds, _ := strconv.Atoi(cell(tab, 3+off, "2PC rounds"))
		if msiaRounds <= mssrRounds {
			t.Errorf("fraction row %d: MS-IA rounds %d not above MS-SR %d", off, msiaRounds, mssrRounds)
		}
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "gap") {
		t.Error("missing final-commit latency gap note")
	}
}

func TestClusterShedShape(t *testing.T) {
	tab := ClusterShed(quick())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	prevShed := -1
	for i := range tab.Rows {
		shed, err := strconv.Atoi(cell(tab, i, "shed"))
		if err != nil {
			t.Fatalf("row %d: unparseable shed: %v", i, err)
		}
		// Tighter admission caps shed at least as much.
		if shed < prevShed {
			t.Errorf("row %d: shed %d fell below looser cap's %d", i, shed, prevShed)
		}
		prevShed = shed
		if v := cell(tab, i, "SLO violations"); v != "0" {
			t.Errorf("row %d: %s SLO violations under overload", i, v)
		}
	}
	if prevShed == 0 {
		t.Error("starved cloud shed nothing")
	}
}

func TestClusterFaultsShape(t *testing.T) {
	tab := ClusterFaults(quick())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want one per protocol", len(tab.Rows))
	}
	for i := range tab.Rows {
		crashes, err := strconv.Atoi(cell(tab, i, "crashes"))
		if err != nil || crashes < 2 {
			t.Errorf("row %d: crashes = %q, want the scripted schedule (≥2)", i, cell(tab, i, "crashes"))
		}
		if cell(tab, i, "restarts") != cell(tab, i, "crashes") {
			t.Errorf("row %d: restarts %s != crashes %s — fleet must end healed",
				i, cell(tab, i, "restarts"), cell(tab, i, "crashes"))
		}
		avail := parsePct(cell(tab, i, "availability"))
		if avail <= 0.5 || avail > 1.0 {
			t.Errorf("row %d: availability %.2f out of range", i, avail)
		}
	}
	// Determinism of the whole harness: regenerating the table gives the
	// same bytes. (Non-race builds only — the race detector perturbs
	// same-virtual-instant goroutine interleavings; see race_off_test.go.)
	if !raceEnabled {
		again := ClusterFaults(quick())
		if tab.Format() != again.Format() {
			t.Error("cluster-faults experiment not deterministic across runs")
		}
	}
}
