// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate. Each experiment returns a
// Table whose rows mirror what the paper reports; cmd/croesus-bench prints
// them and writes EXPERIMENTS.md, and the root bench_test.go exposes each
// as a testing.B benchmark.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not EC2 + real YOLO), but the shapes hold: who wins, by roughly what
// factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "figure2"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// Opts configures experiment scale. The zero value is usable; Default
// yields runs that finish in seconds while preserving every trend.
type Opts struct {
	// Frames per video.
	Frames int
	// Seed for video generation and models.
	Seed int64
	// Mu is the F-score constraint for optimal-threshold experiments.
	Mu float64
	// GridStep for brute-force threshold search.
	GridStep float64
}

// Default returns the standard experiment options.
func Default() Opts {
	return Opts{Frames: 160, Seed: 42, Mu: 0.80, GridStep: 0.05}
}

func (o Opts) defaults() Opts {
	d := Default()
	if o.Frames == 0 {
		o.Frames = d.Frames
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Mu == 0 {
		o.Mu = d.Mu
	}
	if o.GridStep == 0 {
		o.GridStep = d.GridStep
	}
	return o
}

// ms formats a duration as milliseconds with two decimals, like the
// paper's tables.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

func pct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}

func f3(f float64) string {
	return fmt.Sprintf("%.3f", f)
}

// registry maps experiment IDs to their harnesses, in paper order.
var registry = []struct {
	id  string
	run func(Opts) Table
}{
	{"figure2", Figure2},
	{"table1", Table1},
	{"figure3", Figure3},
	{"table2", Table2},
	{"figure4", Figure4},
	{"figure5", Figure5},
	{"figure6a", Figure6a},
	{"figure6b", Figure6b},
	{"figure6c", Figure6c},
	{"cluster-scale", ClusterScale},
	{"cluster-shed", ClusterShed},
	{"cluster-2pc", Cluster2PC},
	{"cluster-faults", ClusterFaults},
	{"cluster-migrate", ClusterMigrate},
	{"fleet-crash", FleetCrash},
	{"graph-depth", GraphDepth},
	{"ablation-policy", AblationPolicy},
	{"ablation-sequencer", AblationSequencer},
	{"ablation-chain", AblationChain},
	{"ablation-2pc", AblationTwoPC},
	{"ablation-smoothing", AblationSmoothing},
}

// All runs every experiment and returns the tables in paper order.
func All(o Opts) []Table {
	tables := make([]Table, len(registry))
	for i, e := range registry {
		tables[i] = e.run(o)
	}
	return tables
}

// ByID runs the experiment with the given ID.
func ByID(id string, o Opts) (Table, bool) {
	for _, e := range registry {
		if e.id == id {
			return e.run(o), true
		}
	}
	return Table{}, false
}

// IDs lists the available experiment IDs without running them.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	return ids
}
