package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/lock"
	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/threshold"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
	"croesus/internal/workload"
)

// Figure2 reproduces "Croesus vs state of the art baselines": for each of
// the four videos, the latency breakdown and F-score of Croesus at
// bandwidth-utilization levels 0..100% against the edge-only and
// cloud-only baselines.
func Figure2(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:    "figure2",
		Title: "Latency breakdown and F-score: Croesus at varying BU vs edge/cloud baselines",
		Header: []string{"video", "system", "BU", "F-score",
			"client-edge ms", "edge-detect ms", "init-txn ms",
			"edge-cloud ms", "cloud-detect ms", "final-txn ms",
			"initial ms", "final ms"},
		Notes: []string{
			"Croesus initial commits stay at edge latency while the final F-score climbs with BU; at BU≈100% the Croesus cloud path exceeds the cloud baseline (it pays both stages), matching the paper's observation.",
		},
	}
	addRow := func(videoName, system string, r runResult) {
		s := r.summary
		b := s.MeanBreakdown
		t.Rows = append(t.Rows, []string{
			videoName, system, pct(s.BU), f3(s.F1Final),
			ms(b.ClientEdge), ms(b.EdgeDetect), ms(b.InitialTxn),
			ms(b.EdgeCloud), ms(b.CloudDetect), ms(b.FinalTxn),
			ms(s.MeanInitialLatency), ms(s.MeanFinalLatency),
		})
	}
	for _, prof := range fourVideos() {
		addRow(prof.Name, "edge-only", run(o, runSpec{prof: prof, mode: core.ModeEdgeOnly}))
		ev := evaluator(o, prof, detect.YOLO416)
		for _, target := range []float64{0, 0.25, 0.50, 0.75, 1.0} {
			l, u := pairForBU(ev, target, 0.05)
			r := run(o, runSpec{prof: prof, mode: core.ModeCroesus, thetaL: l, thetaU: u})
			addRow(prof.Name, fmt.Sprintf("croesus@BU≈%d%%", int(target*100)), r)
		}
		addRow(prof.Name, "cloud-only", run(o, runSpec{prof: prof, mode: core.ModeCloudOnly}))
	}
	return t
}

// Table1 reproduces "Comparison between state-of-the-art edge and cloud and
// optimal threshold Croesus": accuracy (relative to the cloud's 1.0) and
// latency, with the initial-commit latency in parentheses for Croesus.
func Table1(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:    "table1",
		Title: fmt.Sprintf("Optimal-threshold Croesus vs edge and cloud (µ=%.2f)", o.Mu),
		Header: []string{"video", "acc Croesus", "acc Edge", "acc Cloud",
			"lat Croesus ms (initial)", "lat Edge ms", "lat Cloud ms", "(θL,θU)", "BU"},
	}
	for _, prof := range fourVideos() {
		ev := evaluator(o, prof, detect.YOLO416)
		opt := threshold.BruteForce(ev, o.Mu, o.GridStep)
		cro := run(o, runSpec{prof: prof, mode: core.ModeCroesus, thetaL: opt.ThetaL, thetaU: opt.ThetaU})
		edge := run(o, runSpec{prof: prof, mode: core.ModeEdgeOnly})
		cloud := run(o, runSpec{prof: prof, mode: core.ModeCloudOnly})
		t.Rows = append(t.Rows, []string{
			prof.Name,
			fmt.Sprintf("%.2fx", cro.summary.F1Final/cloud.summary.F1Final),
			fmt.Sprintf("%.2fx", edge.summary.F1Final/cloud.summary.F1Final),
			"1.00x",
			fmt.Sprintf("%s (%s)", ms(cro.summary.MeanFinalLatency), ms(cro.summary.MeanInitialLatency)),
			ms(edge.summary.MeanFinalLatency),
			ms(cloud.summary.MeanFinalLatency),
			fmt.Sprintf("(%.2f,%.2f)", opt.ThetaL, opt.ThetaU),
			pct(cro.summary.BU),
		})
	}
	t.Notes = append(t.Notes,
		"The airport video's optimum lands near 0% BU (the edge model is already accurate there), so its Croesus latency collapses to edge latency — the paper's v3 anomaly.")
	return t
}

// Figure3 reproduces "Croesus latency vs. accuracy for different pairs of
// thresholds" on the street-traffic (vehicles) video.
func Figure3(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "figure3",
		Title:  "Threshold-pair sweep on street traffic (vehicles): latency, BU, F-score",
		Header: []string{"(θL,θU)", "BU", "F-score", "initial ms", "final ms", "cloud-leg ms"},
		Notes: []string{
			"Pairs with similar BU can have very different F-scores — e.g. compare (0.5,0.6) against (0.6,0.7): the latter discards the error-dense 0.5–0.6 band instead of validating it.",
		},
	}
	prof := video.StreetVehicles()
	pairs := [][2]float64{
		{0.5, 0.5}, {0.5, 0.6}, {0.5, 0.7}, {0.5, 0.8}, {0.5, 0.9},
		{0.4, 0.6}, {0.6, 0.7}, {0.6, 0.8}, {0.2, 0.9},
	}
	for _, pr := range pairs {
		r := run(o, runSpec{prof: prof, mode: core.ModeCroesus, thetaL: pr[0], thetaU: pr[1]})
		s := r.summary
		cloudLeg := s.MeanBreakdown.EdgeCloud + s.MeanBreakdown.CloudDetect + s.MeanBreakdown.CloudReturn
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("(%.1f,%.1f)", pr[0], pr[1]),
			pct(s.BU), f3(s.F1Final),
			ms(s.MeanInitialLatency), ms(s.MeanFinalLatency), ms(cloudLeg),
		})
	}
	return t
}

// Table2 reproduces "The effect of the cloud model size": optimal
// thresholds, F-score, BU, and detection latency for YOLOv3-{320,416,608}.
func Table2(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "table2",
		Title:  fmt.Sprintf("Effect of the cloud model size (mall video, µ=%.2f)", o.Mu),
		Header: []string{"cloud model", "optimal (θL,θU)", "F-score", "BU", "detect latency s"},
		Notes: []string{
			"Larger cloud models mainly cost detection latency; the optimizer re-balances the thresholds so the resulting F-score and BU stay in the same band, as in the paper.",
		},
	}
	prof := video.MallSurveillance()
	for _, size := range []detect.YOLOSize{detect.YOLO320, detect.YOLO416, detect.YOLO608} {
		ev := evaluator(o, prof, size)
		opt := threshold.BruteForce(ev, o.Mu, 0.1)
		r := run(o, runSpec{prof: prof, mode: core.ModeCroesus, thetaL: opt.ThetaL, thetaU: opt.ThetaU, cloudSize: size})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("YOLOv3-%d", size),
			fmt.Sprintf("(%.1f, %.1f)", opt.ThetaL, opt.ThetaU),
			f3(r.summary.F1Final),
			f3(r.summary.BU),
			fmt.Sprintf("%.2f", meanCloudDetect(r.outcomes).Seconds()),
		})
	}
	return t
}

// Figure4 reproduces "Latency in different setups for the optimal case":
// small/regular edge machines crossed with same/different locations.
func Figure4(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "figure4",
		Title:  fmt.Sprintf("Optimal-threshold Croesus across deployment setups (µ=%.2f)", o.Mu),
		Header: []string{"video", "setup", "initial ms", "final ms", "F-score", "BU"},
		Notes: []string{
			"Setups: edge machine t3a.small (speed 0.45x) or t3a.xlarge (1.0x); cloud in the same location (1 ms) or cross-country (60 ms).",
		},
	}
	setups := []struct {
		name     string
		speed    float64
		sameSite bool
	}{
		{"small edge, different locations", 0.45, false},
		{"small edge, same location", 0.45, true},
		{"regular edge, different locations", 1.0, false},
		{"regular edge, same location", 1.0, true},
	}
	for _, prof := range fourVideos() {
		ev := evaluator(o, prof, detect.YOLO416)
		opt := threshold.BruteForce(ev, o.Mu, o.GridStep)
		for _, su := range setups {
			r := run(o, runSpec{
				prof: prof, mode: core.ModeCroesus,
				thetaL: opt.ThetaL, thetaU: opt.ThetaU,
				edgeSpeed: su.speed, sameSite: su.sameSite,
			})
			t.Rows = append(t.Rows, []string{
				prof.Name, su.name,
				ms(r.summary.MeanInitialLatency), ms(r.summary.MeanFinalLatency),
				f3(r.summary.F1Final), pct(r.summary.BU),
			})
		}
	}
	return t
}

// Figure5 reproduces the BU/accuracy heatmaps over the (θL,θU) grid for
// the street-pedestrian and mall videos, plus the dynamically chosen
// optima: brute force (yellow star) vs gradient step (red star).
func Figure5(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "figure5",
		Title:  "BU / F-score heatmaps over (θL,θU) with brute-force vs gradient optima",
		Header: []string{"video", "θL", "θU=0.0", "0.2", "0.4", "0.6", "0.8", "1.0"},
	}
	videosMu := []struct {
		prof video.Profile
		mu   float64
	}{
		{video.StreetPedestrians(), 0.90},
		{video.MallSurveillance(), 0.80},
	}
	const step = 0.2
	for _, vm := range videosMu {
		ev := evaluator(o, vm.prof, detect.YOLO416)
		for l := 0.0; l < 1.0+1e-9; l += step {
			row := []string{vm.prof.Name, fmt.Sprintf("%.1f", l)}
			for u := 0.0; u < 1.0+1e-9; u += step {
				if u < l {
					row = append(row, "-")
					continue
				}
				f1, bu := ev.Evaluate(l, u)
				row = append(row, fmt.Sprintf("BU=%.2f F=%.2f", bu, f1))
			}
			t.Rows = append(t.Rows, row)
		}
		ev.ResetEvals()
		bf := threshold.BruteForce(ev, vm.mu, 0.05)
		gd := threshold.GradientStep(ev, vm.mu)
		speed := float64(bf.Evals) / float64(gd.Evals)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s (µ=%.2f): brute-force ★ %s; gradient ★ %s — %.1fx fewer evaluations",
			vm.prof.Name, vm.mu, bf, gd, speed))
	}
	return t
}

// Figure6a reproduces the lock-contention comparison: average lock hold
// latency under MS-SR (locks held across the cloud round trip) vs MS-IA
// (locks held per section only), on the mall video.
func Figure6a(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "figure6a",
		Title:  "Lock contention: average lock hold latency, MS-SR vs MS-IA (mall video)",
		Header: []string{"protocol", "mean lock hold", "lock holds", "mean initial ms", "mean final ms"},
		Notes: []string{
			"MS-SR holds every lock from the initial section until the final commit — across the edge→cloud round trip — so hold times sit near the cloud path latency; MS-IA holds locks only for the section body (milliseconds).",
		},
	}
	prof := video.MallSurveillance()
	for _, cc := range []struct {
		name string
		kind ccKind
	}{
		{"MS-IA", ccMSIA},
		{"MS-SR", ccMSSRWait},
	} {
		r := run(o, runSpec{
			prof: prof, mode: core.ModeCroesus,
			thetaL: 0.30, thetaU: 0.70,
			cc: cc.kind, opCost: 150 * time.Microsecond,
		})
		n, mean := r.locks.HoldStats()
		t.Rows = append(t.Rows, []string{
			cc.name,
			mean.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", n),
			ms(r.summary.MeanInitialLatency),
			ms(r.summary.MeanFinalLatency),
		})
	}
	return t
}

// hotspotBatchResult is one Figure6b / ablation measurement.
type hotspotBatchResult struct {
	aborts, total int
	lockWaits     int64
	elapsed       time.Duration
}

// runHotspotBatches executes nBatches batches of batchSize hot-spot update
// transactions. When sequenced is true, MS-IA runs under the batch
// sequencer; otherwise all transactions in a batch run concurrently under
// the given CC, with cloudGap of simulated time between each transaction's
// initial and final sections (the window in which MS-SR holds its locks).
func runHotspotBatches(o Opts, keyRange int, kind ccKind, sequenced bool, cloudGap time.Duration) hotspotBatchResult {
	o = o.defaults()
	const nBatches, batchSize, opsPerTxn = 3, 50, 5
	clk := vclock.NewSim()
	st := store.New()
	locks := lock.NewManager(clk)
	mgr := txn.NewManager(clk, st, locks)
	var cc txn.CC
	switch kind {
	case ccMSSRWait:
		cc = &txn.MSSR{M: mgr, Policy: txn.Wait}
	case ccMSSRNoWait:
		cc = &txn.MSSR{M: mgr, Policy: txn.NoWait}
	default:
		cc = &txn.MSIA{M: mgr}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	res := hotspotBatchResult{}
	start := time.Duration(0)
	for b := 0; b < nBatches; b++ {
		var insts []*txn.Instance
		for i := 0; i < batchSize; i++ {
			body := workload.UpdateOps(rng, "hot", keyRange, opsPerTxn)
			insts = append(insts, mgr.NewInstance(hotspotTxn(clk, body), nil))
		}
		res.total += batchSize
		if sequenced {
			seq := &txn.Sequencer{CC: cc, Clk: clk}
			clk.Go(func() {
				errs := seq.RunInitialBatch(insts)
				for i, in := range insts {
					if errs[i] == nil {
						clk.Sleep(cloudGap)
						cc.RunFinal(in)
					}
				}
			})
			clk.Wait()
		} else {
			for _, in := range insts {
				in := in
				clk.Go(func() {
					if err := cc.RunInitial(in); err != nil {
						return
					}
					clk.Sleep(cloudGap) // waiting for the cloud labels
					cc.RunFinal(in)
				})
			}
			clk.Wait()
		}
	}
	res.aborts = int(mgr.Stats().Aborts)
	res.lockWaits, _ = locks.WaitStats()
	res.elapsed = clk.Now() - start
	return res
}

// hotspotTxn builds a 5-update transaction whose initial section does the
// writes and whose final section terminates.
func hotspotTxn(clk vclock.Clock, body []workload.Op) *txn.Txn {
	var rw txn.RWSet
	for _, op := range body {
		rw.Writes = append(rw.Writes, op.Key)
	}
	return &txn.Txn{
		Name:      "hotspot-update",
		InitialRW: rw,
		FinalRW:   txn.RWSet{},
		Initial: func(c *txn.Ctx) error {
			for _, op := range body {
				clk.Sleep(100 * time.Microsecond)
				v, _ := c.Get(op.Key)
				c.Put(op.Key, store.Int64Value(store.AsInt64(v)+1))
			}
			return nil
		},
		Final: func(c *txn.Ctx) error { return nil },
	}
}

// Figure6b reproduces the abort-rate experiment: MS-SR (no-wait TSPL) abort
// rate versus hot-spot key-range size, with MS-IA at 0% thanks to the
// batch sequencer.
func Figure6b(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "figure6b",
		Title:  "Abort rate vs hot-spot size (batches of 50 txns × 5 updates)",
		Header: []string{"key range", "MS-SR abort rate", "MS-IA abort rate"},
		Notes: []string{
			"MS-SR holds locks across the cloud round trip and aborts on conflict (no-wait); the abort rate is significant below 10K keys, as in the paper. MS-IA under the single-threaded batch sequencer never aborts.",
		},
	}
	for _, keyRange := range []int{100, 300, 1000, 3000, 10000, 30000, 100000} {
		mssr := runHotspotBatches(o, keyRange, ccMSSRNoWait, false, 300*time.Millisecond)
		msia := runHotspotBatches(o, keyRange, ccMSIA, true, 300*time.Millisecond)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", keyRange),
			pct(float64(mssr.aborts) / float64(mssr.total)),
			pct(float64(msia.aborts) / float64(msia.total)),
		})
	}
	return t
}

// Figure6c reproduces the hybrid-technique comparison on the park video
// with the largest cloud model: compression and difference communication
// applied to the cloud baseline and to Croesus.
func Figure6c(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "figure6c",
		Title:  "Hybrid edge-cloud techniques (park video, YOLOv3-608)",
		Header: []string{"system", "final ms", "initial ms", "F-score", "edge-cloud MB"},
		Notes: []string{
			"Compression and differencing shave the transfer, but cloud detection dominates the latency, so the gains are small — the paper's conclusion for both the baseline and Croesus.",
		},
	}
	prof := video.ParkDog()
	ev := evaluator(o, prof, detect.YOLO608)
	opt := threshold.BruteForce(ev, o.Mu, 0.1)
	systems := []struct {
		name string
		mode core.Mode
		pre  netsim.Preprocessor
	}{
		{"cloud", core.ModeCloudOnly, nil},
		{"cloud+compression", core.ModeCloudOnly, netsim.DefaultCompression()},
		{"cloud+compression+difference", core.ModeCloudOnly, netsim.Chain{netsim.DefaultCompression(), netsim.DefaultDiffComm()}},
		{"croesus", core.ModeCroesus, nil},
		{"croesus+compression", core.ModeCroesus, netsim.DefaultCompression()},
		{"croesus+compression+difference", core.ModeCroesus, netsim.Chain{netsim.DefaultCompression(), netsim.DefaultDiffComm()}},
	}
	for _, sys := range systems {
		r := run(o, runSpec{
			prof: prof, mode: sys.mode,
			thetaL: opt.ThetaL, thetaU: opt.ThetaU,
			cloudSize: detect.YOLO608, preproc: sys.pre,
		})
		bytes, _ := r.cloud.Traffic()
		t.Rows = append(t.Rows, []string{
			sys.name,
			ms(r.summary.MeanFinalLatency),
			ms(r.summary.MeanInitialLatency),
			f3(r.summary.F1Final),
			fmt.Sprintf("%.1f", float64(bytes)/(1<<20)),
		})
	}
	return t
}
