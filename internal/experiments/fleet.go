package experiments

import (
	"fmt"
	"os"
	"time"

	"croesus/internal/cluster"
	"croesus/internal/fleet"
	"croesus/internal/scenario"
)

// fleetCrashScenario is the crash/migration scenario FleetCrash replays on
// every runtime — the in-code twin of
// cmd/croesus-cluster/testdata/fleet-crash.json.
func fleetCrashScenario(frames int) *scenario.Scenario {
	if frames <= 0 {
		frames = 40
	}
	return &scenario.Scenario{
		Version: 1,
		Name:    "fleet-crash",
		Seed:    42,
		Topology: scenario.Topology{
			Edges: []scenario.Edge{{ID: "e0"}, {ID: "e1"}},
			Cameras: []scenario.Camera{
				{ID: "cam0", Profile: "street-vehicles", Edge: "e0", Frames: frames},
				{ID: "cam1", Profile: "park-dog", Edge: "e1", Frames: frames},
				{ID: "cam2", Profile: "mall-person", Edge: "e0", Frames: frames},
			},
			Batcher: scenario.Batcher{MaxBatch: 8, SLO: scenario.Duration(80 * time.Millisecond)},
			// Durable engages the sim's WAL-backed crash recovery, so the
			// sim row reports the same replay/recovery columns the real
			// fleet does (fleet edges always run a WAL).
			Durable: true,
		},
		Timeline: []scenario.Event{
			{At: scenario.Duration(3 * time.Second), Do: scenario.KindEdgeCrash, Edge: "e0", RestartAfter: scenario.Duration(2 * time.Second)},
			{At: scenario.Duration(10 * time.Second), Do: scenario.KindMigrateCamera, Camera: "cam2", To: "e1"},
			{At: scenario.Duration(12 * time.Second), Do: scenario.KindLinkFault, A: "e1", B: "cloud", Heal: scenario.Duration(14 * time.Second)},
			{At: scenario.Duration(17 * time.Second), Do: scenario.KindCameraLeave, Camera: "cam1"},
		},
	}
}

// fleetInvariants checks the cross-runtime invariants the sim run
// establishes: every camera reported, frames flowed, the scripted crash
// was executed and recovered, and the WAL replay happened. Returns "OK"
// or the first violation.
func fleetInvariants(r *cluster.ClusterReport, cams int) string {
	switch {
	case r == nil:
		return "no report"
	case len(r.Cameras) != cams:
		return fmt.Sprintf("%d cameras, want %d", len(r.Cameras), cams)
	case r.Frames == 0:
		return "no frames completed"
	case r.Validated == 0:
		return "no frame cloud-validated"
	case r.Faults == nil:
		return "no fault report"
	case r.Faults.Crashes != 1 || r.Faults.Restarts != 1:
		return fmt.Sprintf("crashes/restarts %d/%d, want 1/1", r.Faults.Crashes, r.Faults.Restarts)
	case r.Faults.ReplayedRecords == 0:
		return "no WAL records replayed on recovery"
	case r.Dynamic == nil || r.Dynamic.Migrations != 1:
		return "migration not executed"
	}
	return "OK"
}

// FleetCrash replays one crash/migration scenario on the simulator and,
// when CROESUS_FLEET_BIN names a directory with the croesus-edge/cloud/
// client binaries, on a real multi-process fleet via the croesus-fleet
// orchestration library — and checks the merged report of each runtime
// against the same invariants. This is the acceptance experiment for the
// multi-process deployment: one scenario JSON, N real processes, one
// ClusterReport shape.
func FleetCrash(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "fleet-crash",
		Title:  "crash + WAL recovery + migration, same scenario on every runtime",
		Header: []string{"runtime", "frames", "validated", "replayed", "recovery p50", "final p50", "invariants"},
		Notes: []string{
			"sim runs on the virtual clock (deterministic); the fleet runs real processes on a scaled wall clock, latencies normalized by the time scale",
			"fleet row: crash = SIGKILL of the croesus-edge process, recovery = respawn on the same address + WAL replay, durability verified against the live store",
			"set CROESUS_FLEET_BIN to a directory holding croesus-edge/croesus-cloud/croesus-client to run the multi-process row (CI smoke does)",
		},
	}
	frames := 40
	if o.Frames < frames {
		frames = o.Frames
	}
	s := fleetCrashScenario(frames)

	addRow := func(runtime string, r *cluster.ClusterReport, extra string) {
		replayed, recovery := int64(0), time.Duration(0)
		if r != nil && r.Faults != nil {
			replayed = r.Faults.ReplayedRecords
			recovery = r.Faults.RecoveryP50
		}
		inv := fleetInvariants(r, len(s.Topology.Cameras))
		if inv == "OK" && extra != "" {
			inv = extra
		}
		frames, validated := 0, 0
		var p50 time.Duration
		if r != nil {
			frames, validated, p50 = r.Frames, r.Validated, r.FinalP50
		}
		t.Rows = append(t.Rows, []string{
			runtime, fmt.Sprint(frames), fmt.Sprint(validated), fmt.Sprint(replayed),
			ms(recovery) + " ms", ms(p50) + " ms", inv,
		})
	}

	simRep, err := scenario.RunWith(s, scenario.Options{Transport: "sim"})
	if err != nil {
		t.Notes = append(t.Notes, "sim run failed: "+err.Error())
	} else {
		addRow("sim", simRep, "")
	}

	bin := os.Getenv("CROESUS_FLEET_BIN")
	if bin == "" {
		t.Rows = append(t.Rows, []string{"fleet", "-", "-", "-", "-", "-", "skipped (CROESUS_FLEET_BIN unset)"})
		return t
	}
	res, err := fleet.Run(s, fleet.Options{BinDir: bin, TimeScale: 0.1})
	if err != nil {
		t.Rows = append(t.Rows, []string{"fleet", "-", "-", "-", "-", "-", "run failed: " + err.Error()})
		return t
	}
	extra := ""
	if !res.DurabilityOK {
		extra = "WAL verify failed against the live store"
	}
	addRow("fleet", res.Report, extra)
	return t
}
