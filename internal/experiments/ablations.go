package experiments

import (
	"errors"
	"fmt"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/metrics"
	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/transport"
	"croesus/internal/twopc"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// AblationPolicy contrasts the two MS-SR acquisition policies on a
// hot-spot batch: blocking (Wait) trades aborts for queueing delay, while
// NoWait trades waiting for retries — the design choice behind Algorithm 1
// called out in DESIGN.md.
func AblationPolicy(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "ablation-policy",
		Title:  "MS-SR lock policy: blocking (Wait) vs abort (NoWait), 1000-key hot spot",
		Header: []string{"policy", "abort rate", "lock waits", "batch makespan"},
	}
	for _, p := range []struct {
		name string
		kind ccKind
	}{
		{"Wait", ccMSSRWait},
		{"NoWait", ccMSSRNoWait},
	} {
		r := runHotspotBatches(o, 1000, p.kind, false, 300*time.Millisecond)
		t.Rows = append(t.Rows, []string{
			p.name,
			pct(float64(r.aborts) / float64(r.total)),
			fmt.Sprintf("%d", r.lockWaits),
			r.elapsed.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"Wait (wait-die) queues when safe and restarts younger transactions whose wait would risk deadlock; NoWait never queues and sheds on every conflict. Waiting stretches lock windows, so neither policy strictly dominates on abort rate — the real trade-off is latency (makespan) versus immediate answers.")
	return t
}

// AblationSequencer measures what the MS-IA batch sequencer buys: the same
// hot-spot batch with and without conflict-free wave scheduling.
func AblationSequencer(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "ablation-sequencer",
		Title:  "MS-IA with vs without the batch sequencer (300-key hot spot)",
		Header: []string{"scheduling", "aborts", "lock waits", "batch makespan"},
	}
	for _, s := range []struct {
		name      string
		sequenced bool
	}{
		{"sequencer (conflict-free waves)", true},
		{"unsequenced (all concurrent)", false},
	} {
		r := runHotspotBatches(o, 300, ccMSIA, s.sequenced, 50*time.Millisecond)
		t.Rows = append(t.Rows, []string{
			s.name,
			fmt.Sprintf("%d", r.aborts),
			fmt.Sprintf("%d", r.lockWaits),
			r.elapsed.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"Neither schedule aborts (MS-IA blocks), but only the sequencer eliminates lock queueing entirely — the property the paper relies on for its 0% abort line.")
	return t
}

// AblationChain exercises the generalized m-stage model of §3.5: a
// three-stage edge→regional→cloud chain against the standard two-stage
// pipeline on the street-vehicles video.
func AblationChain(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "ablation-chain",
		Title:  "Generalized multi-stage (§3.5): 2-stage vs 3-stage chain (street vehicles)",
		Header: []string{"chain", "F-score", "mean final ms", "frames stopped at s0/s1/s2"},
	}
	prof := video.StreetVehicles()
	frames := video.NewGenerator(prof, o.Seed).Generate(o.Frames)

	runChain := func(stages []core.ChainStage) (string, string, string) {
		clk := vclock.NewSim()
		ch, err := core.NewChain(clk, netsim.ClientEdgeLink(), stages)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		outs := ch.ProcessVideo(frames)
		truthModel := stages[len(stages)-1].Model
		truth := core.TruthFromModel(truthModel, frames)
		var counts [3]int
		var sumLat time.Duration
		var agg metrics.Counts
		for _, out := range outs {
			if out.StagesRun >= 1 && out.StagesRun <= 3 {
				counts[out.StagesRun-1]++
			}
			sumLat += out.CommitLatency[len(out.CommitLatency)-1]
			agg.Add(metrics.ScoreClass(out.Final(), truth(out.FrameIndex), prof.QueryClass, 0.10))
		}
		mean := sumLat / time.Duration(len(outs))
		return f3(agg.F1()), ms(mean), fmt.Sprintf("%d/%d/%d", counts[0], counts[1], counts[2])
	}

	crossLink := netsim.EdgeCloudCrossCountry()
	regional := &netsim.Link{Name: "edge-regional", Propagation: 12 * time.Millisecond, Bandwidth: 25 << 20}

	twoStage := []core.ChainStage{
		{Name: "edge", Model: detect.TinyYOLOSim(o.Seed), Speed: 1, ThetaL: 0.40, ThetaU: 0.62},
		{Name: "cloud", Model: detect.YOLOv3Sim(detect.YOLO608, o.Seed), Speed: 1, Link: crossLink},
	}
	threeStage := []core.ChainStage{
		{Name: "edge", Model: detect.TinyYOLOSim(o.Seed), Speed: 1, ThetaL: 0.40, ThetaU: 0.62},
		{Name: "regional", Model: detect.YOLOv3Sim(detect.YOLO320, o.Seed), Speed: 1, Link: regional, ThetaL: 0.50, ThetaU: 0.80},
		{Name: "cloud", Model: detect.YOLOv3Sim(detect.YOLO608, o.Seed), Speed: 1, Link: netsim.EdgeCloudCrossCountry()},
	}
	f2, l2, c2 := runChain(twoStage)
	t.Rows = append(t.Rows, []string{"2-stage (edge→cloud)", f2, l2, c2})
	f3v, l3, c3 := runChain(threeStage)
	t.Rows = append(t.Rows, []string{"3-stage (edge→regional→cloud)", f3v, l3, c3})
	t.Notes = append(t.Notes,
		"The intermediate stage absorbs most validations cheaply but adds a hop for frames that still need the full model — consistent with the paper's finding that extra stages add overhead without significant benefit for two-fold edge-cloud asymmetry.")
	return t
}

// AblationTwoPC compares the distributed-commit cost of the two protocols
// (§4.5): MS-IA pays a 2PC at both commits, MS-SR only at the final one.
func AblationTwoPC(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "ablation-2pc",
		Title:  "Multi-partition commit cost: MS-SR (one 2PC) vs MS-IA (two 2PCs), 3 partitions",
		Header: []string{"protocol", "2PC rounds", "prepare RPCs", "initial-commit visible early", "mean txn ms"},
	}
	for _, proto := range []twopc.Protocol{twopc.MSSR, twopc.MSIA} {
		clk := vclock.NewSim()
		parts := make([]*twopc.Partition, 3)
		for i := range parts {
			var link transport.Path
			if i != 0 {
				link = netsim.EdgeCloudSameSite()
			}
			parts[i] = twopc.NewPartition(i, clk, link)
		}
		co := twopc.NewCoordinator(clk, parts, proto)
		const n = 40
		var visibleEarly int
		clk.Run(func() {
			for i := 0; i < n; i++ {
				keyA := store.ItoaKey("a", i)
				keyB := store.ItoaKey("b", i)
				dt := &twopc.DistTxn{
					Name:      "dist",
					InitialRW: txn.RWSet{Writes: []string{keyA, keyB}},
					FinalRW:   txn.RWSet{Writes: []string{keyA, keyB}},
					Initial: func(c *twopc.Ctx) error {
						c.Put(keyA, store.Int64Value(1))
						c.Put(keyB, store.Int64Value(1))
						return nil
					},
					Final: func(c *twopc.Ctx) error {
						c.Put(keyA, store.Int64Value(2))
						return nil
					},
				}
				h, err := co.RunInitial(dt)
				if err != nil && !errors.Is(err, twopc.ErrAborted) {
					panic(err)
				}
				if _, ok := parts[co.Partitioner(keyA)].Store.Get(keyA); ok {
					visibleEarly++
				}
				if err == nil {
					co.RunFinal(h)
				}
			}
		})
		st := co.Stats()
		t.Rows = append(t.Rows, []string{
			proto.String(),
			fmt.Sprintf("%d", st.TwoPCRounds),
			fmt.Sprintf("%d", st.PrepareRPCs),
			fmt.Sprintf("%d/%d", visibleEarly, n),
			ms(clk.Now() / time.Duration(n)),
		})
	}
	t.Notes = append(t.Notes,
		"MS-IA pays twice the commit machinery but exposes the initial commit to other partitions immediately; MS-SR defers all visibility (and every lock) to the final commit.")
	return t
}
