package experiments

import (
	"fmt"
	"time"

	"croesus/internal/cluster"
	"croesus/internal/node"
	"croesus/internal/transport"
	"croesus/internal/vclock"
)

// depthGraph builds the linear inference graph of the given depth: an edge
// tiny-yolo front, depth-2 peer-tier yolo-320 middles, and a cloud yolo-416
// tail. Depth 1 is the edge node alone; depth 2 is exactly the canonical
// two-stage pipeline, so that row doubles as the classic baseline.
func depthGraph(depth int) *node.GraphSpec {
	g := &node.GraphSpec{}
	for k := 0; k < depth; k++ {
		tier := "peer"
		switch {
		case k == 0:
			tier = "edge"
		case k == depth-1 && depth > 1:
			tier = "cloud"
		}
		g.Nodes = append(g.Nodes, node.GraphNodeSpec{Tier: tier})
	}
	return g
}

// GraphDepth sweeps the inference-graph depth from 1 to 4 sections under
// both multi-stage protocols on a sharded two-edge fleet. Every added
// section is one more boundary commit: MS-IA pays an atomic commitment at
// each boundary but releases its locks in between, while MS-SR holds the
// union of every section's locks from the first commit to the last — so
// its lock-wait share of the critical path grows with depth and the
// final-latency gap between the protocols widens. The per-section
// decomposition attributes the gap: MS-SR accumulates lock wait, MS-IA
// per-boundary 2PC time.
func GraphDepth(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "graph-depth",
		Title:  "Inference-graph depth: MS-IA vs MS-SR as sections multiply (4 cameras, 2 edge shards)",
		Header: []string{"protocol", "sections", "final p50 (ms)", "final p99 (ms)", "aborts", "2pc aborts", "apologies", "Σ sec lock (ms)", "Σ sec 2pc (ms)", "Σ sec txn (ms)", "deepest section (lock/2pc ms)"},
	}
	gap := map[int]time.Duration{}
	for _, depth := range []int{1, 2, 3, 4} {
		for _, proto := range []cluster.TxnProtocol{cluster.TxnMSIA, cluster.TxnMSSR} {
			rep, err := cluster.Run(cluster.Config{
				Clock:             vclock.NewSim(),
				Cameras:           clusterCams(4, o.Frames, o.Seed),
				Edges:             []cluster.EdgeSpec{{ID: "west"}, {ID: "east"}},
				Batcher:           cluster.BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
				Seed:              o.Seed,
				Sharded:           true,
				CrossEdgeFraction: 0.25,
				OpCost:            200 * time.Microsecond,
				Protocol:          proto,
				Graph:             depthGraph(depth),
			})
			if err != nil {
				panic("experiments: graph-depth: " + err.Error())
			}
			var sumLock, sumTwoPC, sumTxn time.Duration
			last := cluster.SectionReport{}
			for _, s := range rep.Sections {
				sumLock += s.MeanLockWait
				sumTwoPC += s.MeanTwoPC
				sumTxn += s.MeanTxn
				last = s
			}
			aborts := 0
			for _, cam := range rep.Cameras {
				aborts += cam.Summary.InitialAborts
			}
			if proto == cluster.TxnMSIA {
				gap[depth] -= rep.FinalP50
			} else {
				gap[depth] += rep.FinalP50
			}
			t.Rows = append(t.Rows, []string{
				proto.String(),
				fmt.Sprintf("%d", depth),
				ms(rep.FinalP50),
				ms(rep.FinalP99),
				fmt.Sprintf("%d", aborts),
				fmt.Sprintf("%d", rep.TwoPC.Aborts),
				fmt.Sprintf("%d", rep.Apologies),
				ms(sumLock),
				ms(sumTwoPC),
				ms(sumTxn),
				fmt.Sprintf("%s/%s", ms(last.MeanLockWait), ms(last.MeanTwoPC)),
			})
		}
	}
	// The same depth-3 graph once more per protocol over loopback TCP —
	// the second transport. Wall-clock concurrent, so the numbers vary
	// run to run and go in a note, not a byte-stable row; what must hold
	// is that the fleet completes and the gap's direction survives the
	// real-socket deployment.
	tcp := map[cluster.TxnProtocol]time.Duration{}
	for _, proto := range []cluster.TxnProtocol{cluster.TxnMSIA, cluster.TxnMSSR} {
		rep, err := cluster.Run(cluster.Config{
			Clock:             vclock.NewScaledReal(0.02),
			Transport:         transport.NewTCP(),
			Cameras:           clusterCams(4, o.Frames, o.Seed),
			Edges:             []cluster.EdgeSpec{{ID: "west"}, {ID: "east"}},
			Batcher:           cluster.BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
			Seed:              o.Seed,
			Sharded:           true,
			CrossEdgeFraction: 0.25,
			OpCost:            200 * time.Microsecond,
			Protocol:          proto,
			Graph:             depthGraph(3),
		})
		if err != nil {
			panic("experiments: graph-depth (tcp): " + err.Error())
		}
		tcp[proto] = rep.FinalP50
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("MS-SR − MS-IA final p50 gap (ms): depth 1 %s, depth 2 %s, depth 3 %s, depth 4 %s — each section widens it",
			ms(gap[1]), ms(gap[2]), ms(gap[3]), ms(gap[4])),
		"the decomposition attributes the gap: MS-IA commits everything but pays an atomic commitment per boundary (Σ sec 2pc grows with depth), while MS-SR holds its locks across every boundary and sheds the conflicting work — its abort count grows with depth instead",
		"depth 2 is the canonical two-stage graph and routes through the classic executor — the backward-compatibility baseline (no per-section rows by construction)",
		fmt.Sprintf("loopback-TCP spot check at depth 3 (wall-clock, not byte-stable): MS-IA final p50 %s ms vs MS-SR %s ms — the gap survives the real-socket transport",
			ms(tcp[cluster.TxnMSIA]), ms(tcp[cluster.TxnMSSR])),
	)
	return t
}
