package experiments

import (
	"fmt"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/lock"
	"croesus/internal/smoothing"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// AblationSmoothing measures the correction feedback loop of §2.1's
// footnote (package smoothing): at identical thresholds the corrector
// converts cloud validations into durable local knowledge, cutting
// bandwidth; compared against a plain pipeline tuned to the same reduced
// bandwidth, it wins on accuracy.
func AblationSmoothing(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "ablation-smoothing",
		Title:  "Correction feedback (smoothing): bandwidth and accuracy (park video)",
		Header: []string{"configuration", "(θL,θU)", "BU", "F-score", "mean final ms"},
	}
	prof := video.ParkDog()
	frames := video.NewGenerator(prof, o.Seed).Generate(o.Frames)

	runWith := func(sm core.Smoother, thetaL, thetaU float64) core.Summary {
		clk := vclock.NewSim()
		mgr := txn.NewManager(clk, store.New(), lock.NewManager(clk))
		cloud := detect.YOLOv3Sim(detect.YOLO416, o.Seed)
		p, err := core.New(core.Config{
			Clock:      clk,
			EdgeModel:  detect.TinyYOLOSim(o.Seed),
			CloudModel: cloud,
			ThetaL:     thetaL, ThetaU: thetaU,
			Source:   core.NewWorkloadSource(1000, o.Seed),
			CC:       &txn.MSIA{M: mgr},
			Mgr:      mgr,
			Smoother: sm,
		})
		if err != nil {
			panic("experiments: " + err.Error())
		}
		outs := p.ProcessVideo(frames)
		truth := core.TruthFromModel(cloud, frames)
		return core.Summarize(prof.Name, core.ModeCroesus, prof.QueryClass, outs, truth, 0.10)
	}

	const thetaL, thetaU = 0.40, 0.62
	base := runWith(nil, thetaL, thetaU)
	smoothed := runWith(smoothing.New(), thetaL, thetaU)

	// A plain pipeline narrowed to approximately the smoothed bandwidth.
	matched := base
	bestGap := 2.0
	matchedPair := [2]float64{thetaL, thetaU}
	for _, pair := range [][2]float64{{0.40, 0.45}, {0.45, 0.50}, {0.40, 0.50}, {0.50, 0.55}, {0.45, 0.55}} {
		s := runWith(nil, pair[0], pair[1])
		gap := s.BU - smoothed.BU
		if gap < 0 {
			gap = -gap
		}
		if gap < bestGap {
			bestGap, matched, matchedPair = gap, s, pair
		}
	}

	row := func(name string, pair [2]float64, s core.Summary) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("(%.2f,%.2f)", pair[0], pair[1]),
			pct(s.BU), f3(s.F1Final), ms(s.MeanFinalLatency),
		})
	}
	row("baseline", [2]float64{thetaL, thetaU}, base)
	row("smoothing, same thresholds", [2]float64{thetaL, thetaU}, smoothed)
	row("baseline at matched BU", matchedPair, matched)
	t.Notes = append(t.Notes,
		"Smoothing rewrites edge labels of cloud-settled tracks at boosted confidence, so settled objects stop re-validating: bandwidth falls sharply at the same thresholds, and against a baseline spending the same bandwidth, accuracy is higher — the feedback loop sketched in the paper's §2.1 footnote.")
	return t
}
