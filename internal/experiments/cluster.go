package experiments

import (
	"fmt"
	"strings"
	"time"

	"croesus/internal/cluster"
	"croesus/internal/faults"
	"croesus/internal/scenario"
	"croesus/internal/twopc"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// clusterCams builds n cameras cycling through the paper's profiles with
// distinct seeds, so fleets of any size stay deterministic.
func clusterCams(n, frames int, seed int64) []cluster.CameraSpec {
	profiles := video.AllProfiles()
	cams := make([]cluster.CameraSpec, n)
	for i := 0; i < n; i++ {
		cams[i] = cluster.CameraSpec{
			ID:      fmt.Sprintf("cam%d", i),
			Profile: profiles[i%len(profiles)],
			Seed:    seed + int64(i)*101,
			Frames:  frames,
		}
	}
	return cams
}

// ClusterScale grows the fleet from one camera to sixteen over two edges
// sharing one batched cloud validator: throughput scales with cameras
// while the batcher absorbs the growing validate traffic by forming
// larger batches, holding tail latency under the SLO.
func ClusterScale(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "cluster-scale",
		Title:  "Fleet scaling: cameras vs throughput, batching, and tail latency (2 edges, 1 batched cloud)",
		Header: []string{"cameras", "frames", "fps", "F1", "init p50 (ms)", "final p99 (ms)", "batches", "mean batch", "shed"},
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		rep, err := cluster.Run(cluster.Config{
			Clock:   vclock.NewSim(),
			Cameras: clusterCams(n, o.Frames, o.Seed),
			Edges:   []cluster.EdgeSpec{{ID: "west"}, {ID: "east"}},
			Batcher: cluster.BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
			Seed:    o.Seed,
		})
		if err != nil {
			panic("experiments: cluster-scale: " + err.Error())
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", rep.Frames),
			fmt.Sprintf("%.1f", rep.ThroughputFPS),
			f3(rep.MeanF1Final),
			ms(rep.InitialP50),
			ms(rep.FinalP99),
			fmt.Sprintf("%d", rep.Batcher.Batches),
			fmt.Sprintf("%.2f", rep.Batcher.MeanBatch),
			fmt.Sprintf("%d", rep.Shed),
		})
	}
	t.Notes = append(t.Notes,
		"batch sizes grow with the fleet while every flush stays within the 80ms SLO",
	)
	return t
}

// Cluster2PC shards the fleet keyspace across three edges — one database,
// each edge owning a shard — and sweeps the multi-partition operation rate
// under both multi-stage protocols. MS-IA pays an atomic commitment (2PC)
// at the initial and the final commit but holds locks only per section;
// MS-SR pays a single 2PC at the final commit but holds every lock across
// the cloud round trip. The table reports the distributed-commit work,
// where each protocol's commit latency lands, and the critical-path
// decomposition that attributes the gap between them to lock waiting vs
// atomic-commitment rounds — the §4.5 story at fleet scale.
func Cluster2PC(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "cluster-2pc",
		Title:  "Sharded fleet keyspace: cross-edge transactions under MS-IA vs MS-SR (6 cameras, 3 edge shards)",
		Header: []string{"protocol", "cross-edge", "x-edge commits", "2PC rounds", "prepare RPCs", "lock RPCs", "final p50 (ms)", "final p99 (ms)", "lock p50/p99 (ms)", "2pc p50/p99 (ms)"},
	}
	finalP50 := map[string]time.Duration{}
	cpAtHalf := map[string]cluster.CriticalPath{}
	for _, proto := range []cluster.TxnProtocol{cluster.TxnMSIA, cluster.TxnMSSR} {
		for _, frac := range []float64{0, 0.25, 0.5} {
			rep, err := cluster.Run(cluster.Config{
				Clock:             vclock.NewSim(),
				Cameras:           clusterCams(6, o.Frames, o.Seed),
				Edges:             []cluster.EdgeSpec{{ID: "west"}, {ID: "mid"}, {ID: "east"}},
				Batcher:           cluster.BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
				Seed:              o.Seed,
				Sharded:           true,
				CrossEdgeFraction: frac,
				Protocol:          proto,
			})
			if err != nil {
				panic("experiments: cluster-2pc: " + err.Error())
			}
			if frac == 0.5 {
				finalP50[proto.String()] = rep.FinalP50
				cpAtHalf[proto.String()] = rep.CriticalPath
			}
			cp := rep.CriticalPath
			t.Rows = append(t.Rows, []string{
				proto.String(),
				pct(frac),
				fmt.Sprintf("%d", rep.TwoPC.CrossEdgeCommits),
				fmt.Sprintf("%d", rep.TwoPC.TwoPCRounds),
				fmt.Sprintf("%d", rep.TwoPC.PrepareRPCs),
				fmt.Sprintf("%d", rep.TwoPC.LockRPCs),
				ms(rep.FinalP50),
				ms(rep.FinalP99),
				ms(cp.LockP50) + "/" + ms(cp.LockP99),
				ms(cp.TwoPCP50) + "/" + ms(cp.TwoPCP99),
			})
		}
	}
	gap := finalP50["MS-SR"] - finalP50["MS-IA"]
	sr, ia := cpAtHalf["MS-SR"], cpAtHalf["MS-IA"]
	t.Notes = append(t.Notes,
		fmt.Sprintf("final-commit latency gap at 50%% cross-edge: MS-SR %s vs MS-IA %s (MS-SR − MS-IA = %s)",
			ms(finalP50["MS-SR"])+"ms", ms(finalP50["MS-IA"])+"ms", ms(gap)+"ms"),
		fmt.Sprintf("critical path attributes the gap: lock wait contributes %sms of it at p99 (MS-SR %sms vs MS-IA %sms), 2PC rounds %sms (MS-SR %sms vs MS-IA %sms)",
			ms(sr.LockP99-ia.LockP99), ms(sr.LockP99), ms(ia.LockP99),
			ms(sr.TwoPCP99-ia.TwoPCP99), ms(sr.TwoPCP99), ms(ia.TwoPCP99)),
		"MS-IA runs a 2PC at both commits; MS-SR runs one but holds cross-edge locks across the cloud round trip",
	)
	return t
}

// ClusterFaults runs the sharded fleet through a scripted failure
// schedule — an edge fail-stop with WAL-backed recovery, a participant
// crash right after its 2PC yes vote, a coordinator crash before its
// decision is durable, and a peer-link partition — under both multi-stage
// protocols. The table reports availability (transactions that survived
// the schedule), the recovery work, and where each protocol's final-commit
// latency lands: MS-IA sections fail independently, while MS-SR holds
// every lock across the cloud round trip, so a crash in that window
// retracts the whole transaction. Every run is deterministic: same seed,
// same schedule, byte-identical report.
func ClusterFaults(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "cluster-faults",
		Title:  "Fault injection: crash/recovery schedule vs availability and latency (6 cameras, 3 edge shards, MS-IA vs MS-SR)",
		Header: []string{"protocol", "crashes", "restarts", "txns failed", "availability", "in-doubt C/A", "replayed", "final p50 (ms)", "final p99 (ms)", "recovery p95 (ms)"},
	}
	// The schedule scales with the run: the paper profiles capture at
	// 2 fps, so a run lasts Frames/2 seconds.
	runLen := time.Duration(o.Frames) * 500 * time.Millisecond
	plan := func() *faults.Plan {
		return &faults.Plan{
			Crashes: []faults.EdgeCrash{
				{Edge: 1, At: runLen / 4, RestartAfter: runLen / 10},
			},
			TwoPC: []faults.TwoPCCrash{
				{Edge: 2, Point: twopc.PointParticipantPrepared, Round: 1, RestartAfter: runLen / 20},
				{Edge: 0, Point: twopc.PointAfterPrepare, Round: 3, RestartAfter: runLen / 20},
			},
			Links: []faults.LinkFault{
				{A: 0, B: 2, At: runLen / 2, Heal: runLen * 6 / 10},
			},
		}
	}
	for _, proto := range []cluster.TxnProtocol{cluster.TxnMSIA, cluster.TxnMSSR} {
		rep, err := cluster.Run(cluster.Config{
			Clock:             vclock.NewSim(),
			Cameras:           clusterCams(6, o.Frames, o.Seed),
			Edges:             []cluster.EdgeSpec{{ID: "west"}, {ID: "mid"}, {ID: "east"}},
			Batcher:           cluster.BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
			Seed:              o.Seed,
			CrossEdgeFraction: 0.3,
			Protocol:          proto,
			Faults:            plan(),
		})
		if err != nil {
			panic("experiments: cluster-faults: " + err.Error())
		}
		f := rep.Faults
		avail := 1.0
		if rep.TxnsTriggered > 0 {
			avail = 1 - float64(f.TxnsFailed)/float64(rep.TxnsTriggered)
		}
		t.Rows = append(t.Rows, []string{
			proto.String(),
			fmt.Sprintf("%d", f.Crashes),
			fmt.Sprintf("%d", f.Restarts),
			fmt.Sprintf("%d", f.TxnsFailed),
			pct(avail),
			fmt.Sprintf("%d/%d", f.InDoubtCommitted, f.InDoubtAborted),
			fmt.Sprintf("%d", f.ReplayedRecords),
			ms(rep.FinalP50),
			ms(rep.FinalP99),
			ms(f.RecoveryP95),
		})
	}
	t.Notes = append(t.Notes,
		"every crash recovers from the edge's write-ahead log; in-doubt 2PC blocks resolve against the coordinator's log (presumed abort)",
		"shed and failed work costs accuracy or apologies, never a half-committed transaction",
	)
	return t
}

// ClusterMigrate runs the scenario API's headline event — a live camera
// migration between edges, with a concurrent edge crash to keep the fault
// machinery honest — under both multi-stage protocols, and reports
// availability and tail latency before, during, and after the handoff. The
// migration quiesces the camera's logical shard behind exclusive shard
// intents, hands its keys over inside a 2PC, and bumps the shard-map
// epoch: in-flight transactions finish on the old epoch or retry on the
// new map (the "map retries" column), and MS-SR — which holds every lock
// across the cloud round trip — makes the migration wait out far longer
// intent holds than MS-IA.
func ClusterMigrate(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "cluster-migrate",
		Title:  "Live camera migration: shard handoff vs availability and tail latency (6 cameras, 3 edges, MS-IA vs MS-SR)",
		Header: []string{"protocol", "keys moved", "map retries", "aborts", "availability", "final p99 before (ms)", "final p99 during (ms)", "final p99 after (ms)"},
	}
	runLen := time.Duration(o.Frames) * 500 * time.Millisecond
	build := func(proto string) *scenario.Scenario {
		profiles := []string{"street-vehicles", "park-dog", "mall-person", "street-person", "airport-airplane", "street-vehicles"}
		edges := []string{"west", "mid", "east"}
		cams := make([]scenario.Camera, 6)
		for i := range cams {
			cams[i] = scenario.Camera{
				ID:      fmt.Sprintf("cam%d", i),
				Profile: profiles[i],
				Seed:    o.Seed + int64(i)*101,
				Frames:  o.Frames,
				Edge:    edges[i%3],
			}
		}
		return &scenario.Scenario{
			Name: "cluster-migrate-" + proto,
			Seed: o.Seed,
			Topology: scenario.Topology{
				Edges:             []scenario.Edge{{ID: "west"}, {ID: "mid"}, {ID: "east"}},
				Cameras:           cams,
				Protocol:          proto,
				CrossEdgeFraction: 0.3,
				Batcher:           scenario.Batcher{MaxBatch: 8, SLO: scenario.Duration(80 * time.Millisecond)},
			},
			Timeline: []scenario.Event{
				{At: scenario.Duration(runLen / 4), Do: scenario.KindEdgeCrash, Edge: "mid", RestartAfter: scenario.Duration(runLen / 10)},
				{At: scenario.Duration(runLen / 2), Do: scenario.KindMigrateCamera, Camera: "cam0", To: "east"},
				{At: scenario.Duration(runLen * 3 / 4), Do: scenario.KindWorkloadShift, Camera: "cam0", CrossEdgeFraction: f64(0.5)},
			},
		}
	}
	for _, proto := range []string{"ms-ia", "ms-sr"} {
		rep, err := scenario.Run(build(proto))
		if err != nil {
			panic("experiments: cluster-migrate: " + err.Error())
		}
		avail := 1.0
		if rep.TxnsTriggered > 0 {
			avail = 1 - float64(rep.TwoPC.Aborts)/float64(rep.TxnsTriggered)
		}
		var before, during, after time.Duration
		for _, p := range rep.Phases {
			switch {
			case p.Label == "start":
				before = p.FinalP99
			case strings.HasPrefix(p.Label, "migrate:"):
				during = p.FinalP99
			case strings.HasPrefix(p.Label, "shift:"):
				after = p.FinalP99
			}
		}
		d := rep.Dynamic
		t.Rows = append(t.Rows, []string{
			strings.ToUpper(proto),
			fmt.Sprintf("%d", d.MigratedKeys),
			fmt.Sprintf("%d", rep.TwoPC.MapRetries),
			fmt.Sprintf("%d", rep.TwoPC.Aborts),
			pct(avail),
			ms(before),
			ms(during),
			ms(after),
		})
	}
	t.Notes = append(t.Notes,
		"the handoff is atomic: shard intents quiesce in-flight transactions, the keys move inside one 2PC, and the shard-map epoch bump makes waiters retry on the new routes",
		"a camera migration behaves like a short planned outage of one shard: tail latency bumps during the handoff window and recovers after",
	)
	return t
}

func f64(v float64) *float64 { return &v }

// ClusterShed starves the cloud validator under a fixed eight-camera
// fleet and tightens the admission cap: Croesus degrades by shedding the
// lowest-confidence-margin frames to their edge answers instead of
// letting the backlog (and the validation SLO) blow up. Accuracy falls
// toward edge-only gracefully as shedding rises.
func ClusterShed(o Opts) Table {
	o = o.defaults()
	t := Table{
		ID:     "cluster-shed",
		Title:  "Overload degradation: admission cap vs shedding, accuracy, and SLO compliance (8 cameras, starved cloud)",
		Header: []string{"max pending", "validated", "shed", "shed %", "F1", "final p99 (ms)", "SLO violations"},
	}
	// MaxPending must stay ≥ MaxBatch (4): NewBatcher rejects a cap a
	// batch could never fill under.
	for _, pending := range []int{64, 32, 16, 8, 4} {
		rep, err := cluster.Run(cluster.Config{
			Clock:   vclock.NewSim(),
			Cameras: clusterCams(8, o.Frames, o.Seed),
			Edges:   []cluster.EdgeSpec{{ID: "west"}, {ID: "east"}},
			// CloudSpeed 0.15 models a starved (oversubscribed) GPU.
			Batcher: cluster.BatcherConfig{
				MaxBatch:   4,
				SLO:        60 * time.Millisecond,
				MaxPending: pending,
				CloudSpeed: 0.15,
			},
			Seed: o.Seed,
		})
		if err != nil {
			panic("experiments: cluster-shed: " + err.Error())
		}
		sent := rep.Validated + rep.Shed + rep.Lost
		shedPct := 0.0
		if sent > 0 {
			shedPct = float64(rep.Shed) / float64(sent)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pending),
			fmt.Sprintf("%d", rep.Validated),
			fmt.Sprintf("%d", rep.Shed),
			pct(shedPct),
			f3(rep.MeanF1Final),
			ms(rep.FinalP99),
			fmt.Sprintf("%d", rep.Batcher.SLOViolations),
		})
	}
	t.Notes = append(t.Notes,
		"shed frames keep their edge answer (the initial commit), so overload costs accuracy, never availability",
	)
	return t
}
