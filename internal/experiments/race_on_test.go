//go:build race

package experiments

// raceEnabled: see race_off_test.go.
const raceEnabled = true
