package faults

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"croesus/internal/lock"
	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/transport"
	"croesus/internal/twopc"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/wal"
)

// miniFleet builds a two-partition durable fleet on clk: edge 0 is the
// home of the returned ShardedCC, edge 1 is remote over a 5ms link.
func miniFleet(t *testing.T, clk vclock.Clock) (*twopc.ShardedCC, []*twopc.Partition, [][]transport.Path, []string) {
	t.Helper()
	dir := t.TempDir()
	parts := make([]*twopc.Partition, 2)
	paths := make([]string, 2)
	for i := range parts {
		parts[i] = twopc.NewPartitionOver(i, store.New(), lock.NewManager(clk))
		paths[i] = filepath.Join(dir, "edge.wal"+string(rune('0'+i)))
		l, err := wal.Open(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		parts[i].WAL = l
	}
	mk := func() *netsim.Link { return &netsim.Link{Name: "peer", Propagation: 5 * time.Millisecond} }
	links := [][]transport.Path{{nil, mk()}, {mk(), nil}}
	partitioner := func(key string) int {
		if key[0] == '1' {
			return 1
		}
		return 0
	}
	shardedStore := &twopc.ShardedStore{Parts: parts, Partitioner: partitioner}
	mgr := txn.NewManager(clk, nil, nil)
	mgr.DB = shardedStore
	mgr.RestoreDB = twopc.JournaledShardedStore{ShardedStore: shardedStore}
	cc := &twopc.ShardedCC{
		Clk:         clk,
		M:           mgr,
		Home:        0,
		Parts:       parts,
		Links:       links[0],
		Partitioner: partitioner,
		Protocol:    twopc.MSIA,
		Stats:       &twopc.DistStats{},
	}
	return cc, parts, links, paths
}

func writeTxn(key string, v int64) *txn.Txn {
	body := func(c *txn.Ctx) error {
		c.Put(key, store.Int64Value(v))
		return nil
	}
	return &txn.Txn{
		Name:      "w-" + key,
		InitialRW: txn.RWSet{Writes: []string{key}},
		FinalRW:   txn.RWSet{Writes: []string{key}},
		Initial:   body,
		Final:     body,
	}
}

// crossTxn writes one key on each partition in both sections, so both the
// initial and the final commit run a full cross-edge 2PC round.
func crossTxn(v int64) *txn.Txn {
	body := func(c *txn.Ctx) error {
		c.Put("0x", store.Int64Value(v))
		c.Put("1x", store.Int64Value(v))
		return nil
	}
	return &txn.Txn{
		Name:      "cross",
		InitialRW: txn.RWSet{Writes: []string{"0x", "1x"}},
		FinalRW:   txn.RWSet{Writes: []string{"0x", "1x"}},
		Initial:   body,
		Final:     body,
	}
}

func runTxn(t *testing.T, cc *twopc.ShardedCC, tx *txn.Txn) error {
	t.Helper()
	in := cc.M.NewInstance(tx, nil)
	if err := cc.RunInitial(in); err != nil {
		return err
	}
	return cc.RunFinal(in)
}

func TestInjectorValidation(t *testing.T) {
	clk := vclock.NewSim()
	_, parts, links, paths := miniFleet(t, clk)
	for _, tc := range []struct {
		name string
		plan Plan
		want string
	}{
		{"crash unknown edge", Plan{Crashes: []EdgeCrash{{Edge: 7}}}, "unknown edge"},
		{"2pc unknown edge", Plan{TwoPC: []TwoPCCrash{{Edge: -1}}}, "unknown edge"},
		{"2pc bad point", Plan{TwoPC: []TwoPCCrash{{Edge: 0, Point: 99}}}, "2PC point"},
		{"2pc bad round", Plan{TwoPC: []TwoPCCrash{{Edge: 0, Round: -2}}}, "round"},
		{"self link", Plan{Links: []LinkFault{{A: 1, B: 1}}}, "link fault"},
	} {
		if _, err := NewInjector(clk, tc.plan, parts, links, paths); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// A partition without a WAL cannot be crashed survivably.
	bare := []*twopc.Partition{twopc.NewPartitionOver(0, store.New(), lock.NewManager(clk))}
	if _, err := NewInjector(clk, Plan{}, bare, [][]transport.Path{{nil}}, []string{"x"}); err == nil {
		t.Error("injector accepted a WAL-less partition")
	}
}

// A crash wipes the edge's volatile state; restart rebuilds exactly the
// committed state from the WAL — junk that only lived in memory is gone,
// committed writes are back, and work resumes.
func TestCrashRestartRebuildsFromLog(t *testing.T) {
	clk := vclock.NewSim()
	cc, parts, links, paths := miniFleet(t, clk)
	inj, err := NewInjector(clk, Plan{
		Crashes: []EdgeCrash{{Edge: 1, At: 100 * time.Millisecond, RestartAfter: 50 * time.Millisecond}},
	}, parts, links, paths)
	if err != nil {
		t.Fatal(err)
	}
	cc.Faults = inj

	sleepUntil := func(at time.Duration) { clk.Sleep(at - clk.Now()) }
	inj.Start()
	clk.Go(func() {
		// Before the crash: a committed remote write and a cross one.
		if err := runTxn(t, cc, writeTxn("1a", 1)); err != nil {
			t.Errorf("pre-crash txn: %v", err)
		}
		// Volatile junk on edge 1 that never committed through a txn.
		parts[1].Store.Put("1junk", store.Int64Value(99))

		sleepUntil(110 * time.Millisecond)
		if !inj.Down(1) {
			t.Error("edge 1 not down inside its outage window")
		}
		// A transaction needing the dead edge fails, not blocks.
		if err := runTxn(t, cc, writeTxn("1b", 2)); err == nil {
			t.Error("txn against a crashed edge succeeded")
		}

		sleepUntil(200 * time.Millisecond) // well past the restart
		if inj.Down(1) {
			t.Error("edge 1 still down after RestartAfter")
		}
		if _, ok := parts[1].Store.Get("1junk"); ok {
			t.Error("uncommitted in-memory junk survived the crash")
		}
		if v, ok := parts[1].Store.Get("1a"); !ok || store.AsInt64(v) != 1 {
			t.Errorf("committed write lost across the crash: %v %v", v, ok)
		}
		// The fleet is usable again.
		if err := runTxn(t, cc, writeTxn("1c", 3)); err != nil {
			t.Errorf("post-recovery txn: %v", err)
		}
	})
	clk.Wait()
	inj.Finish()

	c := inj.Counters()
	if c.Crashes != 1 || c.Restarts != 1 {
		t.Errorf("crashes/restarts = %d/%d, want 1/1", c.Crashes, c.Restarts)
	}
	if c.TxnsFailed == 0 {
		t.Error("the outage-window transaction was not counted as failed")
	}
	if c.ReplayedRecords == 0 {
		t.Error("recovery replayed nothing")
	}
	if err := inj.VerifyDurability(); err != nil {
		t.Errorf("durability: %v", err)
	}
	if rep := inj.Report(); rep.RecoveryP50 < 50*time.Millisecond {
		t.Errorf("recovery p50 = %s, want ≥ the 50ms outage", rep.RecoveryP50)
	}
}

// One MS-IA transaction runs two independent commit rounds, and the
// initial round's durable commit marker must never resolve the final
// round. Here the initial 2PC commits fully, then the coordinator
// fail-stops after collecting the final round's votes but before its
// decision is durable: the final round is dead — the live fleet retracts
// the transaction — and both the coordinator's own in-doubt block and the
// participant's must presume abort even though the same transaction id
// carries a round-0 commit marker on the coordinator's log.
func TestFinalRoundNotResolvedByInitialCommitMarker(t *testing.T) {
	clk := vclock.NewSim()
	cc, parts, links, paths := miniFleet(t, clk)
	inj, err := NewInjector(clk, Plan{
		TwoPC: []TwoPCCrash{
			// Edge 0 coordinates both rounds; its second after-prepare
			// instant is the final round.
			{Edge: 0, Point: twopc.PointAfterPrepare, Round: 2, RestartAfter: 50 * time.Millisecond},
		},
	}, parts, links, paths)
	if err != nil {
		t.Fatal(err)
	}
	cc.Faults = inj

	inj.Start()
	clk.Go(func() {
		if err := runTxn(t, cc, crossTxn(7)); err == nil {
			t.Error("transaction survived its coordinator dying before the final decision")
		}
		clk.Sleep(500 * time.Millisecond) // well past the restart
		for i, p := range parts {
			if got := p.StagedBy(0); len(got) != 0 {
				t.Errorf("partition %d still stages %v after recovery", i, got)
			}
		}
		// The retraction must have held: nothing half-committed.
		for _, k := range []string{"0x", "1x"} {
			if v, ok := cc.M.DB.Get(k); ok {
				t.Errorf("retracted write %s = %v resurfaced via the initial round's commit marker", k, v)
			}
		}
	})
	clk.Wait()
	inj.Finish()

	c := inj.Counters()
	if c.InDoubt == 0 || c.InDoubtAborted != c.InDoubt || c.InDoubtCommitted != 0 {
		t.Errorf("in-doubt resolution = %+v, want every final-round block presumed abort", c)
	}
	if err := inj.VerifyDurability(); err != nil {
		t.Errorf("durability: %v", err)
	}
	for i, p := range parts {
		if n := p.Locks.Outstanding(); n != 0 {
			t.Errorf("partition %d leaked %d locks", i, n)
		}
	}
}

// A recovering edge must not read a coordinator's decision cache across a
// partitioned peer link, and a recovering coordinator's sweep must not
// deliver decisions across one either: the in-doubt block stays staged
// until the link heals (here: until the end-of-run sweep resolves it).
func TestInquiryDefersAcrossPartitionedLink(t *testing.T) {
	clk := vclock.NewSim()
	cc, parts, links, paths := miniFleet(t, clk)
	inj, err := NewInjector(clk, Plan{
		TwoPC: []TwoPCCrash{
			{Edge: 1, Point: twopc.PointParticipantPrepared, Round: 1, RestartAfter: 100 * time.Millisecond},
		},
		Crashes: []EdgeCrash{
			// The coordinator itself crashes and restarts while the link is
			// still severed: its recovery sweep must skip the partitioned
			// participant instead of pushing the decision across.
			{Edge: 0, At: 600 * time.Millisecond, RestartAfter: 100 * time.Millisecond},
		},
	}, parts, links, paths)
	if err != nil {
		t.Fatal(err)
	}
	cc.Faults = inj

	inj.Start()
	clk.Go(func() {
		// The participant crashes right after its durable yes vote; the
		// coordinator commits the initial round without it, then the final
		// section fails against the dead edge and the txn retracts.
		runTxn(t, cc, crossTxn(3))
		// Sever the peer path before the restart fires — only the
		// coordinator→participant direction, which must partition the pair
		// for resolution in both directions (an inquiry is a round trip; a
		// sweep's delivery travels exactly this severed direction).
		links[0][1].SetDown(true)
		clk.Sleep(400 * time.Millisecond) // well past the participant restart
		if inj.Down(1) {
			t.Fatal("edge 1 still down after RestartAfter")
		}
		if got := parts[1].StagedBy(0); len(got) != 1 {
			t.Errorf("staged blocks at the recovered edge = %v, want the one in-doubt block held until the link heals", got)
		}
		clk.Sleep(500 * time.Millisecond) // well past the coordinator's crash + sweep
		if inj.Down(0) {
			t.Fatal("edge 0 still down after RestartAfter")
		}
		if got := parts[1].StagedBy(0); len(got) != 1 {
			t.Errorf("staged blocks after the coordinator's sweep = %v, want the block still held across the severed link", got)
		}
		if c := inj.Counters(); c.InDoubt != 0 {
			t.Errorf("in-doubt resolved %d blocks across a severed link", c.InDoubt)
		}
		links[0][1].SetDown(false)
	})
	clk.Wait()
	inj.Finish()

	c := inj.Counters()
	if c.InDoubt != 1 || c.InDoubtCommitted != 1 {
		t.Errorf("in-doubt resolution = %+v, want the initial-round block committed at Finish", c)
	}
	// The transaction was retracted mid-run (its final section died with
	// the participant), and the retraction's restores were journaled while
	// the block was in doubt. The deferred commit must not resurrect the
	// staged writes over that compensation.
	for _, k := range []string{"0x", "1x"} {
		if v, ok := cc.M.DB.Get(k); ok {
			t.Errorf("retracted write %s = %v resurfaced when the deferred block committed", k, v)
		}
	}
	if err := inj.VerifyDurability(); err != nil {
		t.Errorf("durability: %v", err)
	}
}

// An edge left down until the run drains is repaired by Finish at no
// charged cost; that repair must not contribute a sample to the
// recovery-latency percentiles.
func TestEndOfRunRepairNotSampled(t *testing.T) {
	clk := vclock.NewSim()
	cc, parts, links, paths := miniFleet(t, clk)
	inj, err := NewInjector(clk, Plan{
		Crashes: []EdgeCrash{{Edge: 1, At: 10 * time.Millisecond}}, // no RestartAfter: down until drain
	}, parts, links, paths)
	if err != nil {
		t.Fatal(err)
	}
	cc.Faults = inj

	inj.Start()
	clk.Go(func() {
		if err := runTxn(t, cc, writeTxn("0a", 1)); err != nil {
			t.Errorf("home txn: %v", err)
		}
		clk.Sleep(100 * time.Millisecond)
	})
	clk.Wait()
	inj.Finish()

	c := inj.Counters()
	if c.Crashes != 1 || c.Restarts != 1 {
		t.Fatalf("crashes/restarts = %d/%d, want 1/1 (Finish repairs the edge)", c.Crashes, c.Restarts)
	}
	if rep := inj.Report(); rep.RecoveryP50 != 0 || rep.RecoveryP99 != 0 {
		t.Errorf("recovery percentiles = %s/%s from an uncharged end-of-run repair, want no samples", rep.RecoveryP50, rep.RecoveryP99)
	}
}

// A partitioned peer link fails cross-edge transactions without crashing
// anything, and healing restores them.
func TestLinkPartitionFailsCrossEdgeTxns(t *testing.T) {
	clk := vclock.NewSim()
	cc, parts, links, paths := miniFleet(t, clk)
	inj, err := NewInjector(clk, Plan{
		Links: []LinkFault{{A: 0, B: 1, At: 10 * time.Millisecond, Heal: 30 * time.Millisecond}},
	}, parts, links, paths)
	if err != nil {
		t.Fatal(err)
	}
	cc.Faults = inj

	inj.Start()
	clk.Go(func() {
		clk.Sleep(15 * time.Millisecond)
		if err := runTxn(t, cc, writeTxn("1a", 1)); err == nil {
			t.Error("cross-edge txn succeeded over a partitioned link")
		}
		// Home-only work is unaffected by the peer partition.
		if err := runTxn(t, cc, writeTxn("0a", 5)); err != nil {
			t.Errorf("home txn during link partition: %v", err)
		}
		clk.Sleep(30 * time.Millisecond) // past the heal
		if err := runTxn(t, cc, writeTxn("1a", 2)); err != nil {
			t.Errorf("cross-edge txn after heal: %v", err)
		}
	})
	clk.Wait()
	inj.Finish()

	c := inj.Counters()
	if c.LinkOutages != 1 || c.Crashes != 0 {
		t.Errorf("outages/crashes = %d/%d, want 1/0", c.LinkOutages, c.Crashes)
	}
	if c.TxnsFailed == 0 {
		t.Error("partitioned-link transaction not counted as failed")
	}
	if v, _ := parts[1].Store.Get("1a"); store.AsInt64(v) != 2 {
		t.Errorf("post-heal write = %v", v)
	}
	if err := inj.VerifyDurability(); err != nil {
		t.Errorf("durability: %v", err)
	}
}
