// Package faults injects scripted, deterministic failures into a sharded
// Croesus fleet and drives the WAL-backed recovery that survives them. A
// Plan schedules fail-stop edge crashes (with restart after a delay),
// crashes pinned to instants inside a two-phase commit (a participant right
// after its yes vote; the coordinator after collecting votes but before its
// decision is durable; the coordinator after the durable decision but
// before delivery), and inter-edge link partitions — all on the fleet's
// virtual clock, so a faulty run is exactly as deterministic as a healthy
// one: same seed, same schedule, byte-identical report.
//
// The Injector is the runtime half: it implements twopc.FaultOracle (the
// protocol consults it before trusting a partition), executes the plan's
// state transitions, and performs recovery. A crashed edge loses its
// volatile state — lock grants, staged 2PC blocks, uncommitted eager
// writes; what survives is its write-ahead log. Restart replays the log
// with wal.Recover (charging a per-record replay cost in virtual time),
// reinstalls the committed state, and resolves each prepared-but-undecided
// commit round by inquiring its coordinator: a durable commit decision for
// that exact (txn, round) applies the staged writes (minus any a later
// record superseded), a dead or local coordinator's log without one means
// presumed abort, and a round whose coordinator is live but undecided — or
// unreachable behind a partitioned peer link — stays staged until a later
// sweep, the peer's restart, or the end-of-run repair resolves it.
package faults

import (
	"fmt"
	"sync"
	"time"

	"croesus/internal/metrics"
	"croesus/internal/obs"
	"croesus/internal/transport"
	"croesus/internal/twopc"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/wal"
)

// EdgeCrash fail-stops an edge's data plane at a virtual time. The edge's
// in-flight transactions abort or retract, its partition refuses new work,
// and — when RestartAfter is positive — it recovers from its WAL after the
// outage. A non-positive RestartAfter keeps the edge down until the run
// drains (the end-of-run repair still recovers it, so reports always
// describe a healed fleet).
type EdgeCrash struct {
	Edge         int
	At           time.Duration
	RestartAfter time.Duration
}

// TwoPCCrash fail-stops an edge at a scripted instant inside an atomic
// commitment round: the Round-th time (1-based; 0 means first) Edge reaches
// Point. For PointParticipantPrepared the edge crashes as a participant
// that just voted yes; for the other points it crashes as the coordinator.
type TwoPCCrash struct {
	Edge         int
	Point        twopc.TwoPCPoint
	Round        int
	RestartAfter time.Duration
}

// LinkFault partitions both directions of the peer path between edges A
// and B from At until Heal (a Heal at or before At never heals).
type LinkFault struct {
	A, B     int
	At, Heal time.Duration
}

// Plan is a scripted failure schedule for one fleet run.
type Plan struct {
	Crashes []EdgeCrash
	TwoPC   []TwoPCCrash
	Links   []LinkFault
	// ReplayCost is the virtual time charged per WAL record replayed
	// during recovery (default 5µs) — what makes recovery time a
	// function of how much the edge had committed.
	ReplayCost time.Duration
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool {
	return len(p.Crashes) == 0 && len(p.TwoPC) == 0 && len(p.Links) == 0
}

func (p Plan) defaults() Plan {
	if p.ReplayCost == 0 {
		p.ReplayCost = 5 * time.Microsecond
	}
	return p
}

// Counters tallies every fault injected and every recovery action taken.
type Counters struct {
	// Crashes and Restarts count fail-stop events and completed
	// recoveries (the end-of-run repair counts too, so Restarts ==
	// Crashes after a drained run).
	Crashes  int64
	Restarts int64
	// LinkOutages counts link-partition events.
	LinkOutages int64
	// TxnsFailed counts transactions aborted or retracted because a fault
	// interrupted them — the availability cost of the schedule.
	TxnsFailed int64
	// InDoubt counts prepared-but-undecided commit-round blocks that
	// needed resolution — per (txn, round), so one transaction can
	// contribute two; InDoubtCommitted of them had a durable commit
	// decision at the coordinator, InDoubtAborted were presumed abort.
	InDoubt          int64
	InDoubtCommitted int64
	InDoubtAborted   int64
	// ReplayedRecords is the total WAL records replayed by recoveries;
	// TornTails counts truncated torn log tails.
	ReplayedRecords int64
	TornTails       int64
	// Checkpoints counts completed WAL checkpoints (log rewrites that
	// bound replay time); CheckpointsSkipped counts attempts deferred
	// because the edge was down or a live 2PC round was staged.
	Checkpoints        int64
	CheckpointsSkipped int64
}

// Report is the fault subsystem's contribution to a fleet report:
// counters plus recovery-time percentiles (crash to recovered, including
// the outage and the replay cost).
type Report struct {
	Counters
	RecoveryP50 time.Duration
	RecoveryP95 time.Duration
	RecoveryP99 time.Duration
}

// Injector executes a Plan against a fleet's partitions and peer links.
// Construct with NewInjector, call Start once before the fleet runs and
// Finish after it drains. It implements twopc.FaultOracle.
type Injector struct {
	clk   vclock.Clock
	plan  Plan
	parts []*twopc.Partition
	links [][]transport.Path // links[i][j]: edge i's one-way path to edge j
	paths []string           // WAL file per partition

	// EdgeDown, when set, is told about every fail-stop and recovery so the
	// deployment transport can mirror the crash at the network layer — the
	// TCP transport tears the edge's connections down and blackholes its
	// traffic until restart; the sim transport ignores it. Set before
	// Start.
	EdgeDown func(edge int, down bool)

	// Observability hooks, wired by Bind (nil without it): obs carries the
	// wal.replay span each recovery emits; edgeTags[i] is the pre-rendered
	// tag string for edge i's spans.
	obs      *obs.Obs
	edgeTags []string

	mu         sync.Mutex
	down       []bool
	recovering []bool
	epoch      []int
	crashedAt  []time.Duration
	armed      []TwoPCCrash
	seen       map[pointKey]int
	counters   Counters
	recovery   metrics.LatencyStats
}

type pointKey struct {
	edge  int
	point twopc.TwoPCPoint
}

// NewInjector validates the plan against the fleet shape. links[i][j] is
// edge i's one-way link to edge j (nil on the diagonal); paths[i] is the
// WAL file partition i logs to and recovers from.
func NewInjector(clk vclock.Clock, plan Plan, parts []*twopc.Partition, links [][]transport.Path, paths []string) (*Injector, error) {
	n := len(parts)
	if n == 0 {
		return nil, fmt.Errorf("faults: no partitions")
	}
	if len(links) != n || len(paths) != n {
		return nil, fmt.Errorf("faults: %d partitions but %d link rows and %d wal paths", n, len(links), len(paths))
	}
	for i, p := range parts {
		if !p.Durable() {
			return nil, fmt.Errorf("faults: partition %d has no WAL — crashes would lose committed state", i)
		}
	}
	for _, ev := range plan.Crashes {
		if ev.Edge < 0 || ev.Edge >= n {
			return nil, fmt.Errorf("faults: crash of unknown edge %d", ev.Edge)
		}
	}
	for _, ev := range plan.TwoPC {
		if ev.Edge < 0 || ev.Edge >= n {
			return nil, fmt.Errorf("faults: 2PC crash of unknown edge %d", ev.Edge)
		}
		if ev.Point < twopc.PointParticipantPrepared || ev.Point > twopc.PointAfterDecision {
			return nil, fmt.Errorf("faults: unknown 2PC point %d", ev.Point)
		}
		if ev.Round < 0 {
			return nil, fmt.Errorf("faults: negative 2PC round %d", ev.Round)
		}
	}
	for _, ev := range plan.Links {
		if ev.A < 0 || ev.A >= n || ev.B < 0 || ev.B >= n || ev.A == ev.B {
			return nil, fmt.Errorf("faults: link fault between edges %d and %d", ev.A, ev.B)
		}
	}
	return &Injector{
		clk:        clk,
		plan:       plan.defaults(),
		parts:      parts,
		links:      links,
		paths:      paths,
		down:       make([]bool, n),
		recovering: make([]bool, n),
		epoch:      make([]int, n),
		crashedAt:  make([]time.Duration, n),
		armed:      append([]TwoPCCrash{}, plan.TwoPC...),
		seen:       make(map[pointKey]int),
	}, nil
}

// Bind attaches the observability layer: every recovery emits a
// wal.replay span tagged with edgeTags[e], and the fault counters are
// pulled into the registry at scrape time (the report keeps its own
// Counters snapshot — the registry mirrors it, never replaces it). Call
// before Start.
func (i *Injector) Bind(o *obs.Obs, edgeTags []string) {
	if o == nil {
		return
	}
	i.obs = o
	i.edgeTags = edgeTags
	crashes := o.Counter(obs.MetricFaultCrashes, "")
	recoveries := o.Counter(obs.MetricFaultRecover, "")
	replayed := o.Counter(obs.MetricWALReplayed, "")
	o.Registry().RegisterCollector(func(*obs.Registry) {
		c := i.Counters()
		crashes.Add(c.Crashes - crashes.Value())
		recoveries.Add(c.Restarts - recoveries.Value())
		replayed.Add(c.ReplayedRecords - replayed.Value())
	})
}

func (i *Injector) edgeTag(e int) string {
	if e < len(i.edgeTags) {
		return i.edgeTags[e]
	}
	return ""
}

// Start spawns the plan's time-scheduled events on the clock. Call exactly
// once, from the clock's driver, before the fleet's own goroutines start —
// the spawn order pins the virtual-time tiebreak and keeps runs identical.
func (i *Injector) Start() {
	for _, ev := range i.plan.Crashes {
		ev := ev
		i.clk.Go(func() {
			i.clk.Sleep(ev.At)
			// A crash that found the edge already down (another event got
			// there first) owns no recovery either — the event that did
			// crash it schedules the restart.
			if !i.crash(ev.Edge) {
				return
			}
			if ev.RestartAfter > 0 {
				i.clk.Sleep(ev.RestartAfter)
				i.restart(ev.Edge, true)
			}
		})
	}
	for _, ev := range i.plan.Links {
		ev := ev
		i.clk.Go(func() {
			i.clk.Sleep(ev.At)
			i.setLink(ev.A, ev.B, true)
			if ev.Heal > ev.At {
				i.clk.Sleep(ev.Heal - ev.At)
				i.setLink(ev.A, ev.B, false)
			}
		})
	}
}

// Finish repairs the fleet after the run drains: every edge still down is
// recovered from its log (no replay time is charged — the clock's driver
// cannot sleep), and any staged block still waiting on a crashed
// coordinator is resolved against that coordinator's recovered decisions.
// Reports therefore always describe a healed, fully-resolved fleet.
func (i *Injector) Finish() {
	for e := range i.parts {
		if i.Down(e) {
			i.restart(e, false)
		}
	}
	for pi, p := range i.parts {
		for _, coord := range p.StagedCoords() {
			for _, cr := range p.StagedBy(coord) {
				commit, _ := i.parts[coord].Decision(cr)
				i.resolveStaged(pi, cr, commit)
			}
		}
	}
}

// Checkpoint rewrites edge e's write-ahead log as a compact snapshot
// (twopc.Partition.Checkpoint), bounding how much a later crash replays. A
// checkpoint of a down or mid-recovery edge — or one with a live 2PC round
// staged — is skipped and counted, not an error: the fleet retries on its
// next checkpoint tick. Returns whether the checkpoint ran.
func (i *Injector) Checkpoint(e int) bool {
	i.mu.Lock()
	busy := i.down[e] || i.recovering[e]
	i.mu.Unlock()
	if busy {
		i.mu.Lock()
		i.counters.CheckpointsSkipped++
		i.mu.Unlock()
		return false
	}
	_, ok, err := i.parts[e].Checkpoint()
	if err != nil {
		panic(fmt.Sprintf("faults: checkpointing edge %d: %v", e, err))
	}
	i.mu.Lock()
	if ok {
		i.counters.Checkpoints++
	} else {
		i.counters.CheckpointsSkipped++
	}
	i.mu.Unlock()
	return ok
}

// Down implements twopc.FaultOracle.
func (i *Injector) Down(pi int) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.down[pi]
}

// Epoch implements twopc.FaultOracle.
func (i *Injector) Epoch(pi int) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.epoch[pi]
}

// TxnFault implements twopc.FaultOracle.
func (i *Injector) TxnFault() {
	i.mu.Lock()
	i.counters.TxnsFailed++
	i.mu.Unlock()
}

// At2PCPoint implements twopc.FaultOracle: it counts the instant against
// the armed TwoPCCrash triggers and, on a match, fail-stops the acting
// edge (part) right there — synchronously, on the transaction's own
// goroutine, which is what makes the crash land at exactly the scripted
// protocol step on every run.
func (i *Injector) At2PCPoint(coord, part int, point twopc.TwoPCPoint) bool {
	i.mu.Lock()
	if i.down[part] {
		i.mu.Unlock()
		return false
	}
	k := pointKey{edge: part, point: point}
	i.seen[k]++
	n := i.seen[k]
	hit := -1
	for j, t := range i.armed {
		round := t.Round
		if round == 0 {
			round = 1
		}
		if t.Edge == part && t.Point == point && round == n {
			hit = j
			break
		}
	}
	if hit < 0 {
		i.mu.Unlock()
		return true
	}
	t := i.armed[hit]
	i.armed = append(i.armed[:hit], i.armed[hit+1:]...)
	i.mu.Unlock()

	if i.crash(part) && t.RestartAfter > 0 {
		i.clk.Go(func() {
			i.clk.Sleep(t.RestartAfter)
			i.restart(part, true)
		})
	}
	return false
}

// crash fail-stops edge e: liveness flips, the crash epoch advances (the
// signal to in-flight transactions that their locks there are gone), and
// the partition's volatile protocol state is dropped. The store object is
// left for restart to rebuild — nothing may trust it while down. It
// reports whether this call performed the crash; false means the edge was
// already down, and the event that downed it owns the recovery.
func (i *Injector) crash(e int) bool {
	i.mu.Lock()
	if i.down[e] {
		i.mu.Unlock()
		return false
	}
	i.down[e] = true
	i.epoch[e]++
	i.crashedAt[e] = i.clk.Now()
	i.counters.Crashes++
	i.mu.Unlock()
	i.parts[e].CrashReset()
	if i.EdgeDown != nil {
		i.EdgeDown(e, true)
	}
	return true
}

// restart recovers edge e from its WAL: the recovery cost (ReplayCost per
// record plus one inquiry round trip per in-doubt block, when charge is
// set) is slept first off a sizing pass, and only then does an
// authoritative replay rebuild the state — so a write that reaches the
// log while the recovery clock runs (a retraction restore journaled to a
// down partition) is included, never silently erased. The committed state
// is reinstalled, the decision cache rebuilt, in-doubt blocks resolved
// against their coordinators' logs, and finally peers' blocks waiting on
// e as coordinator resolve too.
func (i *Injector) restart(e int, charge bool) {
	i.mu.Lock()
	if !i.down[e] || i.recovering[e] {
		i.mu.Unlock()
		return
	}
	i.recovering[e] = true
	i.mu.Unlock()
	tReplay := i.clk.Now()

	if charge {
		records, coords, err := wal.Probe(i.paths[e])
		if err != nil {
			panic(fmt.Sprintf("faults: sizing recovery of edge %d from %s: %v", e, i.paths[e], err))
		}
		cost := time.Duration(records) * i.plan.ReplayCost
		for _, coord := range coords {
			if coord != e && !i.peerDown(e, coord) {
				if l := i.links[e][coord]; l != nil {
					cost += 2 * l.TransferTime(256)
				}
			}
		}
		if cost > 0 {
			i.clk.Sleep(cost)
		}
	}

	// No virtual time passes below: the state the replay sees is the
	// state the fleet observes when the edge rejoins.
	res, err := wal.Recover(i.paths[e])
	if err != nil {
		panic(fmt.Sprintf("faults: recovering edge %d from %s: %v", e, i.paths[e], err))
	}
	i.parts[e].Store.Restore(res.Store.Snapshot())
	i.parts[e].RestoreDecisions(res.Decisions)
	deadLogs := make(map[int]map[wal.TxnRound]bool) // per-coordinator inquiry cache
	for _, d := range res.InDoubt {
		cr := twopc.CommitRound{ID: txn.ID(d.Txn), Round: d.Round}
		commit, known := i.inquire(e, d.Coord, cr, deadLogs)
		i.parts[e].Restage(cr, d.Coord, d.Writes)
		if known {
			i.resolveStaged(e, cr, commit)
		}
		// Unknown — a live coordinator whose round may still be in flight,
		// or a coordinator behind a partitioned link — keeps the block
		// staged: it resolves at the round's own phase-2 delivery, at the
		// coordinator's next recovery sweep, or at Finish. Presuming abort
		// here could half-commit a round the coordinator is about to (or
		// already did) decide.
	}

	i.mu.Lock()
	i.down[e] = false
	i.recovering[e] = false
	i.counters.Restarts++
	i.counters.ReplayedRecords += int64(res.Records)
	if res.Truncated {
		i.counters.TornTails++
	}
	if charge {
		// Only scheduled recoveries sample the latency distribution: the
		// end-of-run repair in Finish pays no outage or replay cost, and
		// its crash-to-drain interval would say nothing about recovery.
		i.recovery.Add(i.clk.Now() - i.crashedAt[e])
	}
	i.mu.Unlock()
	i.obs.Span(obs.SpanWALReplay, i.edgeTag(e), tReplay, i.clk.Now())
	if i.EdgeDown != nil {
		i.EdgeDown(e, false)
	}

	// Peers may hold blocks whose coordinator was e; its decisions are
	// durable again, so they can resolve now.
	i.sweep(e)
}

// inquire asks an in-doubt commit round's coordinator for its outcome. A
// reachable live coordinator answers from its decision cache — and "no
// decision yet" means the round may still be in flight, so the answer is
// unknown, NOT abort. A partitioned peer link makes the coordinator —
// live or dead — unreachable outright: the answer is unknown and the
// block defers to the coordinator's sweep or to Finish; reading its state
// across a severed link would undermine the partition model. Our own log
// and a reachable dead coordinator's log (scanned once per coordinator
// via deadLogs) are the final word: the crashed round can never decide
// later, so a missing decision record there is presumed abort (known).
// The peer link is charged but not slept: the inquiry time was part of
// the restart's recovery cost.
func (i *Injector) inquire(at, coord int, cr twopc.CommitRound, deadLogs map[int]map[wal.TxnRound]bool) (commit, known bool) {
	if at == coord {
		c, k := i.parts[at].Decision(cr)
		return c && k, true // our own recovered log: no record ⇒ the round died with us
	}
	if i.peerDown(at, coord) {
		return false, false // coordinator unreachable: stay in doubt
	}
	if l := i.links[at][coord]; l != nil {
		l.Charge(256)
		l.Charge(256)
	}
	if !i.Down(coord) {
		c, k := i.parts[coord].Decision(cr)
		return c && k, k // undecided on a live coordinator: still in flight
	}
	d, ok := deadLogs[coord]
	if !ok {
		var err error
		d, err = wal.Decisions(i.paths[coord])
		if err != nil {
			panic(fmt.Sprintf("faults: inquiring coordinator %d log: %v", coord, err))
		}
		deadLogs[coord] = d
	}
	return d[cr.TxnRound()], true // a dead coordinator's log is final: absence ⇒ abort
}

// resolveStaged delivers the decision for one staged block and counts it.
func (i *Injector) resolveStaged(pi int, cr twopc.CommitRound, commit bool) {
	i.parts[pi].DeliverDecision(cr, commit)
	i.mu.Lock()
	i.counters.InDoubt++
	if commit {
		i.counters.InDoubtCommitted++
	} else {
		i.counters.InDoubtAborted++
	}
	i.mu.Unlock()
}

// sweep resolves, at every live partition, the staged blocks coordinated
// by the just-recovered edge. A partition behind a severed peer link is
// skipped — delivering a decision across a partition would break the
// partition model just like reading across one; its blocks resolve at a
// later sweep, at its own restart's inquiry, or at Finish.
func (i *Injector) sweep(coord int) {
	for pi, p := range i.parts {
		if i.Down(pi) {
			continue // resolves at its own restart
		}
		if i.peerDown(pi, coord) {
			continue // partitioned from the coordinator: stays in doubt
		}
		for _, cr := range p.StagedBy(coord) {
			commit, _ := i.parts[coord].Decision(cr)
			i.resolveStaged(pi, cr, commit)
		}
	}
}

// peerDown reports whether the peer path between edges a and b is severed
// in either direction — an inquiry is a round trip and a decision delivery
// travels the opposite way from the check's caller, so one dead direction
// partitions the pair for in-doubt resolution purposes.
func (i *Injector) peerDown(a, b int) bool {
	if l := i.links[a][b]; l != nil && l.IsDown() {
		return true
	}
	if l := i.links[b][a]; l != nil && l.IsDown() {
		return true
	}
	return false
}

func (i *Injector) setLink(a, b int, down bool) {
	if l := i.links[a][b]; l != nil {
		l.SetDown(down)
	}
	if l := i.links[b][a]; l != nil {
		l.SetDown(down)
	}
	if down {
		i.mu.Lock()
		i.counters.LinkOutages++
		i.mu.Unlock()
	}
}

// Counters returns a snapshot of the fault counters.
func (i *Injector) Counters() Counters {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counters
}

// Report summarizes the run: counters plus recovery-time percentiles.
func (i *Injector) Report() *Report {
	i.mu.Lock()
	defer i.mu.Unlock()
	return &Report{
		Counters:    i.counters,
		RecoveryP50: i.recovery.Percentile(50),
		RecoveryP95: i.recovery.Percentile(95),
		RecoveryP99: i.recovery.Percentile(99),
	}
}

// VerifyDurability checks, after a drained and Finished run, that every
// partition's live store is exactly the state its WAL recovers to, that
// no in-doubt block is left unresolved, and that atomic commitment held
// across partitions per commit round (no round both committed on one log
// and aborted on another — a transaction whose initial round committed
// and whose final round aborted is a legitimate retraction, not a split)
// — i.e. the crash schedule lost no committed write, leaked no staged
// state, and half-committed nothing.
func (i *Injector) VerifyDurability() error {
	verdicts := make(map[wal.TxnRound]bool)
	for pi, p := range i.parts {
		res, err := wal.Recover(i.paths[pi])
		if err != nil {
			return fmt.Errorf("faults: verify partition %d: %w", pi, err)
		}
		if len(res.InDoubt) > 0 {
			return fmt.Errorf("faults: partition %d left %d in-doubt commit rounds", pi, len(res.InDoubt))
		}
		for k, commit := range res.Decisions {
			if prev, ok := verdicts[k]; ok && prev != commit {
				return fmt.Errorf("faults: txn %d round %d committed on one partition and aborted on another (seen at partition %d)", k.Txn, k.Round, pi)
			}
			verdicts[k] = commit
		}
		live := p.Store.Snapshot()
		rec := res.Store.Snapshot()
		if len(live) != len(rec) {
			return fmt.Errorf("faults: partition %d: live store has %d keys, log recovers %d", pi, len(live), len(rec))
		}
		for k, v := range live {
			rv, ok := rec[k]
			if !ok || string(rv) != string(v) {
				return fmt.Errorf("faults: partition %d key %q: live %q, recovered %q", pi, k, v, rv)
			}
		}
	}
	return nil
}
