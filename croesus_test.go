package croesus

// Integration tests exercising the public facade exactly the way the
// examples and a downstream user would.

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFacadePipelineEndToEnd(t *testing.T) {
	clk := NewSimClock()
	sys := NewSystem(clk)
	cloud := YOLOv3Sim(YOLO416, 42)
	p, err := NewPipeline(Config{
		Clock:      clk,
		EdgeModel:  TinyYOLOSim(42),
		CloudModel: cloud,
		ThetaL:     0.40,
		ThetaU:     0.62,
		Source:     NewWorkloadSource(500, 7),
		CC:         sys.MSIA(),
		Mgr:        sys.Manager,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	prof := ParkDog()
	frames := NewVideoGenerator(prof, 11).Generate(30)
	outs := p.ProcessVideo(frames)
	truth := TruthFromModel(cloud, frames)
	sum := Summarize(prof.Name, ModeCroesus, prof.QueryClass, outs, truth, 0.10)

	if sum.Frames != 30 {
		t.Fatalf("frames = %d", sum.Frames)
	}
	if sum.BU <= 0 || sum.BU >= 1 {
		t.Errorf("BU = %.2f, want partial validation", sum.BU)
	}
	if sum.F1Final <= sum.F1Initial {
		t.Errorf("final F %.3f not above initial F %.3f — corrections had no effect", sum.F1Final, sum.F1Initial)
	}
	if sum.MeanInitialLatency >= sum.MeanFinalLatency {
		t.Error("initial commit must precede final commit")
	}
	// Every initial commit must be resolved: finally committed, or
	// terminally retracted by a cascade from an erroneous transaction.
	st := sys.Manager.Stats()
	if st.InitialCommits == 0 {
		t.Error("no transactions committed")
	}
	if unresolved := st.InitialCommits - st.FinalCommits; unresolved < 0 || unresolved > st.Retractions {
		t.Errorf("multi-stage guarantee violated: %+v", st)
	}
}

func TestFacadeMultiStageTxn(t *testing.T) {
	clk := NewSimClock()
	sys := NewSystem(clk)
	cc := sys.MSSRWait()
	sys.Store.Put("k", Value("v0"))

	tx := &Txn{
		Name:      "demo",
		InitialRW: RWSet{Reads: []string{"k"}},
		FinalRW:   RWSet{Writes: []string{"k"}},
		Initial: func(c *TxnCtx) error {
			if _, ok := c.Get("k"); !ok {
				return errors.New("missing key")
			}
			return nil
		},
		Final: func(c *TxnCtx) error {
			c.Put("k", Value("v1"))
			return nil
		},
	}
	inst := sys.Manager.NewInstance(tx, nil)
	clk.Run(func() {
		if err := cc.RunInitial(inst); err != nil {
			t.Errorf("initial: %v", err)
		}
		clk.Sleep(100 * time.Millisecond)
		if err := cc.RunFinal(inst); err != nil {
			t.Errorf("final: %v", err)
		}
	})
	if v, _ := sys.Store.Get("k"); string(v) != "v1" {
		t.Errorf("k = %q", v)
	}
}

func TestFacadeThresholdSolvers(t *testing.T) {
	prof := StreetVehicles()
	frames := NewVideoGenerator(prof, 11).Generate(80)
	ev := NewThresholdEvaluator(frames, TinyYOLOSim(42), YOLOv3Sim(YOLO416, 42), prof.QueryClass, 0.10)
	bf := BruteForceThresholds(ev, 0.8, 0.1)
	gd := GradientThresholds(ev, 0.8)
	if !bf.Feasible || !gd.Feasible {
		t.Fatalf("solvers infeasible: %v %v", bf, gd)
	}
	if len(ThresholdHeatmap(ev, 0.2)) == 0 {
		t.Error("empty heatmap")
	}
}

func TestFacadeBankAndChain(t *testing.T) {
	b := NewBank()
	b.Register(Registration{
		Name:    "r",
		Trigger: Trigger{Classes: []string{"dog"}},
		Make: func(d Detection, _ *AuxEvent) *Txn {
			return &Txn{Name: "t"}
		},
	})
	inv := b.Match([]Detection{{Label: "dog", Confidence: 0.9, Box: Rect{X: 0.1, Y: 0.1, W: 0.2, H: 0.2}}}, nil)
	if len(inv) != 1 {
		t.Fatalf("invocations = %d", len(inv))
	}

	clk := NewSimClock()
	ch, err := NewChain(clk, ClientEdgeLink(), []ChainStage{
		{Name: "edge", Model: TinyYOLOSim(42), Speed: 1, ThetaL: 0.4, ThetaU: 0.6},
		{Name: "cloud", Model: YOLOv3Sim(YOLO416, 42), Speed: 1, Link: EdgeCloudCrossCountry()},
	})
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	frames := NewVideoGenerator(ParkDog(), 11).Generate(10)
	outs := ch.ProcessVideo(frames)
	if len(outs) != 10 {
		t.Fatalf("chain outcomes = %d", len(outs))
	}
	for _, o := range outs {
		if o.StagesRun < 1 || o.StagesRun > 2 {
			t.Errorf("frame %d ran %d stages", o.FrameIndex, o.StagesRun)
		}
	}
}

func TestFacadeDistributed(t *testing.T) {
	clk := NewSimClock()
	parts := []*PartitionNode{
		NewPartition(0, clk, nil),
		NewPartition(1, clk, EdgeCloudSameSite()),
	}
	co := NewDistCoordinator(clk, parts, DistMSIA)
	dt := &DistTxn{
		Name:      "d",
		InitialRW: RWSet{Writes: []string{"x:1", "x:2"}},
		FinalRW:   RWSet{Writes: []string{"x:1"}},
		Initial: func(c *DistCtx) error {
			c.Put("x:1", Value("a"))
			c.Put("x:2", Value("b"))
			return nil
		},
		Final: func(c *DistCtx) error { c.Put("x:1", Value("z")); return nil },
	}
	clk.Run(func() {
		if err := co.Run(dt); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	tab, ok := RunExperiment("figure6b", ExperimentOpts{Frames: 30, GridStep: 0.2})
	if !ok {
		t.Fatal("figure6b missing")
	}
	if len(tab.Rows) == 0 || tab.Format() == "" || tab.Markdown() == "" {
		t.Error("experiment table empty or unrenderable")
	}
	if _, ok := RunExperiment("not-an-experiment", ExperimentOpts{}); ok {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeCluster(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{
		Clock: NewSimClock(),
		Cameras: []CameraSpec{
			{ID: "a", Profile: ParkDog(), Seed: 11, Frames: 30},
			{ID: "b", Profile: StreetVehicles(), Seed: 12, Frames: 30},
			{ID: "c", Profile: MallSurveillance(), Seed: 13, Frames: 30},
			{ID: "d", Profile: AirportRunway(), Seed: 14, Frames: 30},
		},
		Edges:     []EdgeSpec{{ID: "west"}, {ID: "east"}},
		Placement: LeastLoaded{},
		Batcher:   BatcherConfig{MaxBatch: 4, SLO: 80 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if rep.Frames != 120 || len(rep.Cameras) != 4 {
		t.Fatalf("report covers %d frames over %d cameras", rep.Frames, len(rep.Cameras))
	}
	if rep.Validated == 0 {
		t.Error("no frames validated through the shared batcher")
	}
	if rep.Batcher.SLOViolations != 0 {
		t.Errorf("%d SLO violations", rep.Batcher.SLOViolations)
	}
	if rep.Format() == "" {
		t.Error("report unrenderable")
	}
}

// TestFacadeFaults drives a fault-injected sharded fleet entirely through
// the public API: a scripted edge crash plus a participant crash mid-2PC,
// recovered from the WAL, reported in the cluster report.
func TestFacadeFaults(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{
		Clock: NewSimClock(),
		Cameras: []CameraSpec{
			{ID: "a", Profile: ParkDog(), Seed: 11, Frames: 30},
			{ID: "b", Profile: StreetVehicles(), Seed: 12, Frames: 30},
			{ID: "c", Profile: MallSurveillance(), Seed: 13, Frames: 30},
		},
		Edges:             []EdgeSpec{{ID: "west"}, {ID: "mid"}, {ID: "east"}},
		Batcher:           BatcherConfig{MaxBatch: 4, SLO: 80 * time.Millisecond},
		CrossEdgeFraction: 0.4,
		Faults: &FaultPlan{
			Crashes: []EdgeCrash{{Edge: 1, At: 3 * time.Second, RestartAfter: time.Second}},
			TwoPC:   []TwoPCCrash{{Edge: 2, Point: PointParticipantPrepared, Round: 1, RestartAfter: time.Second}},
			Links:   []LinkFault{{A: 0, B: 2, At: 7 * time.Second, Heal: 8 * time.Second}},
		},
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if rep.Frames != 90 {
		t.Fatalf("frames = %d", rep.Frames)
	}
	f := rep.Faults
	if f == nil || f.Crashes != 2 || f.Restarts != 2 || f.LinkOutages != 1 {
		t.Fatalf("fault report = %+v", f)
	}
	if !strings.Contains(rep.Format(), "faults:") {
		t.Error("report does not render the fault line")
	}
}

// TestFacadeValidatorInjection plugs a custom Validator into the plain
// pipeline — the seam the cluster layer is built on.
func TestFacadeValidatorInjection(t *testing.T) {
	clk := NewSimClock()
	shedAll := validatorFunc(func(req ValidationRequest) ValidationResult {
		return ValidationResult{Status: ValidationShed}
	})
	p, err := NewPipeline(Config{
		Clock:     clk,
		EdgeModel: TinyYOLOSim(42),
		ThetaL:    0.40,
		ThetaU:    0.62,
		Validator: shedAll,
	})
	if err != nil {
		t.Fatalf("NewPipeline with Validator: %v", err)
	}
	frames := NewVideoGenerator(ParkDog(), 11).Generate(20)
	outs := p.ProcessVideo(frames)
	sawShed := false
	for _, o := range outs {
		if o.Shed {
			sawShed = true
			if len(o.FinalVisible) != len(o.InitialVisible) {
				t.Fatal("shed frame lost its edge answer")
			}
		}
	}
	if !sawShed {
		t.Error("shed-everything validator never consulted")
	}
}

type validatorFunc func(ValidationRequest) ValidationResult

func (f validatorFunc) Validate(req ValidationRequest) ValidationResult { return f(req) }
