// Inferencegraph: the same two-edge fleet run twice — once as the
// classic two-stage pipeline (edge initial → cloud final) and once over
// a depth-3 inference graph where an edge detector hands off to a
// peer-tier classifier on the neighboring edge, whose confidence switch
// either finishes early or escalates to a cloud verifier.
//
// Every graph node is one SECTION of the same multi-stage transaction:
// under MS-IA each boundary commits (and a late retraction cascades back
// through the earlier ones), under MS-SR the union of every section's
// locks is held from the first boundary to the last. The report
// decomposes latency per section, so the cost of each extra boundary is
// visible line by line.
//
// The graph scenario is also printed as its JSON encoding — exactly what
// `croesus-cluster -scenario` (and `-validate`) accepts — and runs
// unmodified over loopback TCP, where the cloud-tier section crosses a
// real socket per boundary:
//
//	go run ./examples/inferencegraph
//	go run ./examples/inferencegraph -transport tcp -timescale 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"croesus"
)

var opts croesus.ScenarioOptions

func scenarioWith(name string, g *croesus.GraphSpec) *croesus.Scenario {
	return &croesus.Scenario{
		Version: 1,
		Name:    name,
		Seed:    42,
		Topology: croesus.ScenarioTopology{
			Edges: []croesus.ScenarioEdge{
				{ID: "west"},
				{ID: "east", Speed: 0.8},
			},
			Cameras: []croesus.ScenarioCamera{
				{ID: "corridor", Profile: "street-vehicles", Seed: 101, Frames: 60, Edge: "west"},
				{ID: "crossing", Profile: "street-person", Seed: 102, Frames: 60, Edge: "east"},
				{ID: "park", Profile: "park-dog", Seed: 103, Frames: 60, Edge: "west"},
			},
			Sharded:           true,
			CrossEdgeFraction: 0.25,
			Batcher:           croesus.ScenarioBatcher{MaxBatch: 8, SLO: croesus.ScenarioDuration(80 * time.Millisecond)},
			Graph:             g,
		},
	}
}

// depth3 is the inference graph: detect on the home edge, classify on
// the peer edge, and only low-confidence frames pay the cloud verifier.
func depth3() *croesus.GraphSpec {
	return &croesus.GraphSpec{Nodes: []croesus.GraphNodeSpec{
		{Name: "detect", Tier: "edge"},
		{Name: "classify", Tier: "peer", Model: croesus.ModelYOLO320, Switch: []croesus.SwitchBranchSpec{
			{Lo: 0, Hi: 0.6, To: "verify"},
			{Lo: 0.6, Hi: 1, To: "done"},
		}},
		{Name: "verify", Tier: "cloud", Model: croesus.ModelYOLO416},
	}}
}

func run(s *croesus.Scenario) {
	rep, err := croesus.RunScenarioWith(s, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("--- %s ---\n%s\n", s.Name, rep.Format())
}

func main() {
	flag.StringVar(&opts.Transport, "transport", croesus.TransportSim,
		`"sim" (default) or "tcp"`)
	flag.Float64Var(&opts.TimeScale, "timescale", 0.05,
		"wall seconds per virtual second over tcp")
	flag.Parse()

	// The baseline: no graph block at all — the classic two-stage
	// pipeline. An explicit {edge, cloud} graph would produce the very
	// same bytes; that equivalence is pinned by the cluster tests.
	run(scenarioWith("classic-two-stage", nil))

	// The depth-3 graph: one more boundary, decomposed per section in
	// the report's section rows.
	graph := scenarioWith("inference-graph-depth3", depth3())
	run(graph)

	data, err := graph.Encode()
	if err != nil {
		panic(err)
	}
	fmt.Println("the graph scenario as croesus-cluster -scenario JSON:")
	os.Stdout.Write(data)
}
