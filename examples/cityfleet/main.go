// Cityfleet: a city operations center runs six cameras — two traffic
// corridors, two pedestrian crossings, a mall, and a park — across two
// edge nodes that share one batched cloud validator.
//
// The example is written against the scenario API: each run is a
// declarative Scenario — a topology plus a clock-ordered timeline — so
// "the south cabinet loses power", "the north corridor camera is re-homed
// to the south cabinet mid-shift", and "rush hour doubles the crossing
// traffic" are data, not code. The last scenario is also printed as its
// JSON encoding, which is exactly what `croesus-cluster -scenario` runs.
//
// Every scenario also runs unmodified over loopback TCP — the unified
// runtime's second transport — with -transport tcp:
//
//	go run ./examples/cityfleet
//	go run ./examples/cityfleet -transport tcp -timescale 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"croesus"
)

var opts croesus.ScenarioOptions

func cameras() []croesus.ScenarioCamera {
	return []croesus.ScenarioCamera{
		// The slow south cabinet (0.45× speed) carries two streams; the
		// fast north one carries four — the layout least-loaded placement
		// converges to, made explicit by the declarative topology.
		{ID: "corridor-n", Profile: "street-vehicles", Seed: 101, Frames: 100, Edge: "north"},
		{ID: "corridor-s", Profile: "street-vehicles", Seed: 102, Frames: 100, Edge: "north"},
		{ID: "crossing-e", Profile: "street-person", Seed: 103, Frames: 100, Edge: "north"},
		{ID: "crossing-w", Profile: "street-person", Seed: 104, Frames: 100, Edge: "south"},
		{ID: "mall", Profile: "mall-person", Seed: 105, Frames: 100, Edge: "north"},
		{ID: "park", Profile: "park-dog", Seed: 106, Frames: 100, Edge: "south"},
	}
}

func topology(batcher croesus.ScenarioBatcher) croesus.ScenarioTopology {
	return croesus.ScenarioTopology{
		Edges: []croesus.ScenarioEdge{
			{ID: "north", Speed: 1.0},
			{ID: "south", Speed: 0.45},
		},
		Cameras: cameras(),
		Batcher: batcher,
	}
}

func run(s *croesus.Scenario) *croesus.ClusterReport {
	rep, err := croesus.RunScenarioWith(s, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("--- %s ---\n%s\n", s.Name, rep.Format())
	return rep
}

func ms(d int64) croesus.ScenarioDuration  { return croesus.ScenarioDuration(d * 1e6) }
func sec(d int64) croesus.ScenarioDuration { return croesus.ScenarioDuration(d * 1e9) }

func main() {
	flag.StringVar(&opts.Transport, "transport", croesus.TransportSim,
		"deployment: sim (virtual clock, deterministic) or tcp (loopback sockets, wall clock)")
	flag.Float64Var(&opts.TimeScale, "timescale", 0.05,
		"wall-clock compression for -transport tcp")
	flag.Parse()

	// A healthy cloud: batches form under the SLO, nothing is shed.
	run(&croesus.Scenario{
		Name:     "healthy cloud",
		Topology: topology(croesus.ScenarioBatcher{MaxBatch: 8, SLO: ms(80)}),
	})

	// The same fleet against a starved cloud GPU (7× slower, tiny
	// admission cap): the batcher sheds the lowest-confidence-margin
	// frames, which finalize with their edge labels — accuracy dips,
	// but every client still gets both commits and the flush SLO holds.
	run(&croesus.Scenario{
		Name: "starved cloud (overload)",
		Topology: topology(croesus.ScenarioBatcher{
			MaxBatch: 4, SLO: ms(60), MaxPending: 6, CloudSpeed: 0.15,
		}),
	})

	// One city-wide database sharded across the cabinets — every camera
	// owns a logical shard, a quarter of each transaction's keys belong
	// to another shard (remote locks, 2PC commits) — put through a full
	// operational day in one timeline:
	//
	//   t=10s  the south cabinet loses power mid-shift; its write-ahead
	//          log brings the partition back 4s later, and a scripted
	//          participant crash right after a 2PC yes vote resolves
	//          from the coordinator's log,
	//   t=20s  rush hour: the crossings double their capture rate and
	//          their queries go 50% cross-shard,
	//   t=25s  the operations center re-homes corridor-n to the south
	//          cabinet — a live migration: its shard's keys hand over
	//          inside a 2PC while in-flight transactions finish on the
	//          old epoch or retry on the new map,
	//   t=30s  a pop-up event camera joins the north cabinet,
	//   t=40s  it packs up and leaves,
	//   t=45s  the south cabinet is decommissioned for the night — a
	//          graceful retirement: its cameras (and their shards) drain
	//          back to north through live migrations, then the cabinet
	//          leaves the placement pool for good.
	half, double := 0.5, 2.0
	day := &croesus.Scenario{
		Name: "city day (power loss, rush hour, live migration)",
		Seed: 42,
		Topology: func() croesus.ScenarioTopology {
			t := topology(croesus.ScenarioBatcher{MaxBatch: 8, SLO: ms(80)})
			t.CrossEdgeFraction = 0.25
			t.CheckpointEvery = sec(15)
			return t
		}(),
		Timeline: []croesus.ScenarioEvent{
			{At: sec(10), Do: croesus.EventEdgeCrash, Edge: "south", RestartAfter: sec(4)},
			{At: sec(12), Do: croesus.EventTwoPCCrash, Edge: "south",
				Point: croesus.ScenarioPointParticipantPrepared, Round: 1, RestartAfter: sec(2)},
			{At: sec(20), Do: croesus.EventWorkloadShift, Camera: "crossing-e", Rate: &double, CrossEdgeFraction: &half},
			{At: sec(20), Do: croesus.EventWorkloadShift, Camera: "crossing-w", Rate: &double, CrossEdgeFraction: &half},
			{At: sec(25), Do: croesus.EventMigrateCamera, Camera: "corridor-n", To: "south"},
			{At: sec(30), Do: croesus.EventCameraJoin,
				Join: &croesus.ScenarioCamera{ID: "popup", Profile: "mall-person", Seed: 107, Frames: 20, Edge: "north"}},
			{At: sec(40), Do: croesus.EventCameraLeave, Camera: "popup"},
			{At: sec(45), Do: croesus.EventEdgeRetire, Edge: "south"},
		},
	}
	run(day)

	if data, err := day.Encode(); err == nil {
		fmt.Println("--- the city-day scenario as croesus-cluster -scenario input ---")
		os.Stdout.Write(data)
		fmt.Println()
	}

	fmt.Println("Overload costs accuracy on the least ambiguous frames, never")
	fmt.Println("availability: shed frames keep their initial edge answer, exactly")
	fmt.Println("the degradation mode Croesus' multi-stage transactions permit.")
	fmt.Println("With the keyspace sharded, cross-edge transactions keep the same")
	fmt.Println("guarantees through every timeline event: a cabinet power loss")
	fmt.Println("recovers from the write-ahead log with in-doubt 2PC state resolved")
	fmt.Println("against the coordinator's log, and a live camera migration hands")
	fmt.Println("its shard over atomically — no key lost, duplicated, or served by")
	fmt.Println("two epochs at once — while the fleet keeps serving.")
}
