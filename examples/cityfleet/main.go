// Cityfleet: a city operations center runs six cameras — two traffic
// corridors, two pedestrian crossings, a mall, and a park — across two
// edge nodes that share one batched cloud validator.
//
// The example shows the cluster layer end to end: placement spreads the
// streams over the edges, the cloud batcher coalesces validate-interval
// frames from all six cameras under an 80 ms flush SLO, and when we
// starve the cloud GPU the fleet degrades by shedding the least
// ambiguous frames back to their edge answers instead of building an
// unbounded backlog.
//
//	go run ./examples/cityfleet
package main

import (
	"fmt"
	"time"

	"croesus"
)

func cameras() []croesus.CameraSpec {
	return []croesus.CameraSpec{
		{ID: "corridor-n", Profile: croesus.StreetVehicles(), Seed: 101, Frames: 100},
		{ID: "corridor-s", Profile: croesus.StreetVehicles(), Seed: 102, Frames: 100},
		{ID: "crossing-e", Profile: croesus.StreetPedestrians(), Seed: 103, Frames: 100},
		{ID: "crossing-w", Profile: croesus.StreetPedestrians(), Seed: 104, Frames: 100},
		{ID: "mall", Profile: croesus.MallSurveillance(), Seed: 105, Frames: 100},
		{ID: "park", Profile: croesus.ParkDog(), Seed: 106, Frames: 100},
	}
}

func run(title string, cfg croesus.ClusterConfig) {
	cfg.Clock = croesus.NewSimClock()
	cfg.Cameras = cameras()
	cfg.Edges = []croesus.EdgeSpec{{ID: "north", Speed: 1.0}, {ID: "south", Speed: 0.45}}
	cfg.Placement = croesus.LeastLoaded{}
	rep, err := croesus.RunCluster(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("--- %s ---\n%s\n", title, rep.Format())
}

func main() {
	// A healthy cloud: batches form under the SLO, nothing is shed.
	run("healthy cloud", croesus.ClusterConfig{
		Batcher: croesus.BatcherConfig{
			MaxBatch: 8,
			SLO:      80 * time.Millisecond,
		},
	})

	// The same fleet against a starved cloud GPU (7× slower, tiny
	// admission cap): the batcher sheds the lowest-confidence-margin
	// frames, which finalize with their edge labels — accuracy dips,
	// but every client still gets both commits and the flush SLO holds.
	run("starved cloud (overload)", croesus.ClusterConfig{
		Batcher: croesus.BatcherConfig{
			MaxBatch:   4,
			SLO:        60 * time.Millisecond,
			MaxPending: 6,
			CloudSpeed: 0.15,
		},
	})

	// One city-wide database sharded across the two edges: a quarter of
	// every transaction's keys belong to the other edge, so those
	// transactions lock remotely and commit with 2PC — the operations
	// center's cross-corridor queries hitting both shards atomically.
	run("sharded keyspace (25% cross-edge, MS-IA)", croesus.ClusterConfig{
		Batcher: croesus.BatcherConfig{
			MaxBatch: 8,
			SLO:      80 * time.Millisecond,
		},
		CrossEdgeFraction: 0.25,
		Protocol:          croesus.TxnMSIA,
	})

	// The south cabinet loses power mid-shift and a participant edge
	// fail-stops right after voting yes in a 2PC round: every committed
	// write survives in the edge's write-ahead log, the in-doubt
	// transaction resolves against the coordinator's log, and the fleet
	// keeps serving — transactions that needed the dead edge fail with
	// apologies instead of blocking or half-committing.
	run("south cabinet power loss (WAL recovery)", croesus.ClusterConfig{
		Batcher: croesus.BatcherConfig{
			MaxBatch: 8,
			SLO:      80 * time.Millisecond,
		},
		CrossEdgeFraction: 0.25,
		Protocol:          croesus.TxnMSIA,
		Faults: &croesus.FaultPlan{
			Crashes: []croesus.EdgeCrash{
				{Edge: 1, At: 10 * time.Second, RestartAfter: 4 * time.Second},
			},
			TwoPC: []croesus.TwoPCCrash{
				{Edge: 1, Point: croesus.PointParticipantPrepared, Round: 1, RestartAfter: 2 * time.Second},
			},
		},
	})

	fmt.Println("Overload costs accuracy on the least ambiguous frames, never")
	fmt.Println("availability: shed frames keep their initial edge answer, exactly")
	fmt.Println("the degradation mode Croesus' multi-stage transactions permit.")
	fmt.Println("With the keyspace sharded, cross-edge transactions keep the same")
	fmt.Println("guarantees: remote locks in global partition order and 2PC at the")
	fmt.Println("section commits, with retraction cascades crossing edges. And when")
	fmt.Println("an edge cabinet dies, its write-ahead log brings the partition back")
	fmt.Println("with zero committed writes lost and in-doubt 2PC state resolved")
	fmt.Println("against the coordinator's log.")
}
