// Quickstart: run the Croesus pipeline on a synthetic park video and
// compare it with the edge-only and cloud-only baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"croesus"
)

func main() {
	prof := croesus.ParkDog()
	frames := croesus.NewVideoGenerator(prof, 11).Generate(120)

	fmt.Printf("video: %s, %d frames\n\n", prof, len(frames))
	fmt.Printf("%-12s %8s %9s %12s %12s %8s\n",
		"system", "BU", "F-score", "initial", "final", "apologies")

	for _, mode := range []croesus.Mode{croesus.ModeEdgeOnly, croesus.ModeCroesus, croesus.ModeCloudOnly} {
		sum := runOnce(mode, frames, prof)
		fmt.Printf("%-12s %7.1f%% %9.3f %12s %12s %8d\n",
			sum.Mode, sum.BU*100, sum.F1Final,
			sum.MeanInitialLatency.Round(time.Millisecond),
			sum.MeanFinalLatency.Round(time.Millisecond),
			sum.Apologies)
	}

	fmt.Println("\nCroesus gives the client edge-speed initial commits with cloud-grade")
	fmt.Println("final accuracy, paying the cloud only for frames whose edge confidence")
	fmt.Println("falls inside the validate interval [θL, θU].")
}

func runOnce(mode croesus.Mode, frames []*croesus.Frame, prof croesus.VideoProfile) croesus.Summary {
	clk := croesus.NewSimClock()
	sys := croesus.NewSystem(clk)
	cloudModel := croesus.YOLOv3Sim(croesus.YOLO416, 42)
	p, err := croesus.NewPipeline(croesus.Config{
		Clock:      clk,
		Mode:       mode,
		EdgeModel:  croesus.TinyYOLOSim(42),
		CloudModel: cloudModel,
		ThetaL:     0.40,
		ThetaU:     0.62,
		Source:     croesus.NewWorkloadSource(1000, 7),
		CC:         sys.MSIA(),
		Mgr:        sys.Manager,
	})
	if err != nil {
		panic(err)
	}
	outs := p.ProcessVideo(frames)
	truth := croesus.TruthFromModel(cloudModel, frames)
	return croesus.Summarize(prof.Name, mode, prof.QueryClass, outs, truth, 0.10)
}
