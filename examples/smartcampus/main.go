// Smartcampus is the paper's §2.1 running example: a campus AR application
// with two tasks driven by the transactions bank.
//
//   - Task 1 (tbldng): whenever a building is detected, read its info from
//     the database and render it on the headset. The final section re-renders
//     with an apology if the cloud model disagrees with the edge model.
//   - Task 2 (trsrv): when the user clicks the auxiliary device, reserve a
//     study room in the center-most detected building. The final section
//     checks the corrected labels; a reservation made in the wrong building
//     is retracted and re-made in the right one, with an apology.
//
// The example drives the edge/cloud models, the bank, and MS-IA manually —
// the low-level API underneath core.Pipeline.
//
//	go run ./examples/smartcampus
package main

import (
	"errors"
	"fmt"
	"math/rand"

	"croesus"
)

// campus builds a profile where "building" is the query class.
func campus() croesus.VideoProfile {
	p := croesus.AirportRunway() // large, mostly static objects — like buildings
	p.Name = "smart-campus"
	p.QueryClass = "building"
	p.Classes = []croesus.ClassFreq{
		{Class: "building", Freq: 0.7},
		{Class: "shuttle", Freq: 0.3},
	}
	p.DifficultyMean = 0.45 // campus haze: the edge model errs sometimes
	p.DifficultyStd = 0.18
	return p
}

const nRooms = 3 // study rooms per building

func roomKey(building string, room int) string {
	return fmt.Sprintf("room:%s:%d", building, room)
}

func buildingKeys(names []string) []string {
	var keys []string
	for _, b := range names {
		keys = append(keys, "bldg:"+b)
		for r := 0; r < nRooms; r++ {
			keys = append(keys, roomKey(b, r))
		}
	}
	return keys
}

func main() {
	clk := croesus.NewSimClock()
	sys := croesus.NewSystem(clk)
	cc := sys.MSIA()

	// Name the campus buildings after the ground-truth track IDs the
	// detector reports, so corrected labels map to database keys.
	buildings := []string{"Engineering", "Library", "Gym", "Cafeteria"}
	for _, b := range buildings {
		sys.Store.Put("bldg:"+b, croesus.Value(fmt.Sprintf("%s Building — hours 8am-10pm", b)))
		for r := 0; r < nRooms; r++ {
			sys.Store.Put(roomKey(b, r), croesus.Value("free"))
		}
	}
	allKeys := buildingKeys(buildings)
	nameOf := func(d croesus.Detection) string {
		return buildings[d.TrackID%len(buildings)]
	}

	// ----- The transactions bank (§3.3) -----
	bank := croesus.NewBank()

	// Task 1: display building info.
	bank.Register(croesus.Registration{
		Name:    "tbldng",
		Trigger: croesus.Trigger{Classes: []string{"building"}},
		Make: func(d croesus.Detection, _ *croesus.AuxEvent) *croesus.Txn {
			return &croesus.Txn{
				Name:      "tbldng",
				InitialRW: croesus.RWSet{Reads: allKeys},
				FinalRW:   croesus.RWSet{Reads: allKeys},
				Initial: func(c *croesus.TxnCtx) error {
					in := c.In().(croesus.InitialInput)
					name := nameOf(in.Trigger)
					if info, ok := c.Get("bldg:" + name); ok {
						fmt.Printf("  [initial] rendering info for %-12s → %s\n", name, info)
					}
					return nil
				},
				Final: func(c *croesus.TxnCtx) error {
					fin := c.In().(croesus.FinalInput)
					switch fin.Case {
					case croesus.MatchCorrect, croesus.MatchAssumed:
						return nil // labels agree: terminate (paper task 1)
					case croesus.MatchErroneous:
						c.Apologize("that wasn't a building after all — info card removed")
						fmt.Println("  [final]   removed an info card (false detection)")
						return nil
					default:
						name := nameOf(fin.Cloud)
						if info, ok := c.Get("bldg:" + name); ok {
							fmt.Printf("  [final]   corrected card → %s\n", info)
						}
						c.Apologize("building identity corrected to " + name)
						return nil
					}
				},
			}
		},
	})

	// Task 2: reserve a study room on click.
	bank.Register(croesus.Registration{
		Name:    "trsrv",
		Trigger: croesus.Trigger{Classes: []string{"building"}, Aux: "click"},
		Make: func(d croesus.Detection, _ *croesus.AuxEvent) *croesus.Txn {
			var reserved string // key of the room taken in the initial section
			return &croesus.Txn{
				Name:      "trsrv",
				InitialRW: croesus.RWSet{Writes: allKeys},
				FinalRW:   croesus.RWSet{Writes: allKeys},
				Initial: func(c *croesus.TxnCtx) error {
					in := c.In().(croesus.InitialInput)
					name := nameOf(in.Trigger)
					for r := 0; r < nRooms; r++ {
						k := roomKey(name, r)
						if v, _ := c.Get(k); string(v) == "free" {
							c.Put(k, croesus.Value("reserved"))
							reserved = k
							fmt.Printf("  [initial] reserved %s\n", k)
							return nil
						}
					}
					return errors.New("no free rooms in " + name)
				},
				Final: func(c *croesus.TxnCtx) error {
					fin := c.In().(croesus.FinalInput)
					if fin.Case == croesus.MatchCorrect || fin.Case == croesus.MatchAssumed {
						return nil // right building: keep the reservation
					}
					// Wrong building (or not a building): undo and re-book.
					if reserved != "" {
						c.Put(reserved, croesus.Value("free"))
						fmt.Printf("  [final]   released %s (wrong building)\n", reserved)
					}
					if fin.Case == croesus.MatchErroneous {
						c.Apologize("reservation cancelled: no building was there")
						return nil
					}
					name := nameOf(fin.Cloud)
					for r := 0; r < nRooms; r++ {
						k := roomKey(name, r)
						if v, _ := c.Get(k); string(v) == "free" {
							c.Put(k, croesus.Value("reserved"))
							c.Apologize("moved your reservation to " + name)
							fmt.Printf("  [final]   re-booked %s\n", k)
							return nil
						}
					}
					c.Apologize("no rooms available in " + name + " — reservation cancelled")
					return nil
				},
			}
		},
	})

	// ----- Drive frames through edge and cloud models -----
	edge := croesus.TinyYOLOSim(42)
	cloud := croesus.YOLOv3Sim(croesus.YOLO416, 42)
	gen := croesus.NewVideoGenerator(campus(), 9)
	rng := rand.New(rand.NewSource(5))

	clk.Run(func() {
		for i := 0; i < 12; i++ {
			f := gen.Next()
			edgeDets := edge.Detect(f).Detections
			// The user clicks on some frames.
			var aux []croesus.AuxEvent
			if rng.Float64() < 0.5 {
				aux = append(aux, croesus.AuxEvent{Kind: "click"})
			}
			inv := bank.Match(relabel(edgeDets), aux)
			if len(inv) == 0 {
				continue
			}
			fmt.Printf("frame %d: %d labels, %d click(s) → %d transaction(s)\n",
				f.Index, len(edgeDets), len(aux), len(inv))

			// Initial sections at the edge.
			var pend []*croesus.TxnInstance
			var trig []croesus.Detection
			for _, iv := range inv {
				inst := sys.Manager.NewInstance(iv.Txn, croesus.InitialInput{FrameIndex: f.Index, Trigger: iv.Label})
				if err := cc.RunInitial(inst); err != nil {
					fmt.Printf("  [initial] %s aborted: %v\n", iv.Txn.Name, err)
					continue
				}
				pend = append(pend, inst)
				trig = append(trig, iv.Label)
			}

			// Cloud validation and final sections. Each transaction's
			// trigger is matched on its own: several transactions may
			// share one label (tbldng and trsrv on the same building),
			// and each final section receives that label's correction.
			cloudDets := relabel(cloud.Detect(f).Detections)
			for j, inst := range pend {
				m := croesus.MatchLabels([]croesus.Detection{trig[j]}, cloudDets, 0.10)[0]
				inst.FinalIn = croesus.FinalInput{FrameIndex: f.Index, Case: m.Case, Edge: trig[j], Cloud: m.Cloud}
				if err := cc.RunFinal(inst); err != nil && !errors.Is(err, croesus.ErrRetracted) {
					fmt.Printf("  [final]   %v\n", err)
				}
			}
		}
	})

	// ----- Epilogue -----
	st := sys.Manager.Stats()
	fmt.Printf("\ntransactions: %d initial commits, %d final commits, %d apologies\n",
		st.InitialCommits, st.FinalCommits, st.Apologies)
	reservedCount := 0
	for _, b := range buildings {
		for r := 0; r < nRooms; r++ {
			if v, _ := sys.Store.Get(roomKey(b, r)); string(v) == "reserved" {
				reservedCount++
			}
		}
	}
	fmt.Printf("rooms reserved at end of day: %d\n", reservedCount)
}

// relabel maps the airport-derived classes onto campus vocabulary.
func relabel(dets []croesus.Detection) []croesus.Detection {
	out := make([]croesus.Detection, len(dets))
	for i, d := range dets {
		switch d.Label {
		case "airplane":
			d.Label = "building"
		case "truck":
			d.Label = "shuttle"
		}
		out[i] = d
	}
	return out
}
