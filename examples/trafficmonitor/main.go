// Trafficmonitor shows the bandwidth-thresholding optimizer of §3.4 on the
// street-traffic video: it sweeps the (θL, θU) space, solves for the
// cheapest thresholds meeting an accuracy constraint µ with both brute
// force and gradient step, then runs the pipeline at the optimum and
// reports latency, bandwidth utilization, and the estimated cloud egress
// bill.
//
//	go run ./examples/trafficmonitor
package main

import (
	"fmt"
	"time"

	"croesus"
)

func main() {
	prof := croesus.StreetVehicles()
	frames := croesus.NewVideoGenerator(prof, 11).Generate(200)
	edge := croesus.TinyYOLOSim(42)
	cloud := croesus.YOLOv3Sim(croesus.YOLO416, 42)

	ev := croesus.NewThresholdEvaluator(frames, edge, cloud, prof.QueryClass, 0.10)

	// A coarse look at the trade-off surface.
	fmt.Printf("trade-off surface for %s (query %q):\n", prof.Name, prof.QueryClass)
	fmt.Printf("%-12s %8s %9s\n", "(θL,θU)", "BU", "F-score")
	for _, pair := range [][2]float64{{0.5, 0.5}, {0.5, 0.6}, {0.6, 0.7}, {0.4, 0.7}, {0.2, 0.9}} {
		f1, bu := ev.Evaluate(pair[0], pair[1])
		fmt.Printf("(%.1f, %.1f)   %7.1f%% %9.3f\n", pair[0], pair[1], bu*100, f1)
	}

	// Solve for the optimum under µ = 0.85 both ways.
	const mu = 0.85
	ev.ResetEvals()
	bf := croesus.BruteForceThresholds(ev, mu, 0.05)
	gd := croesus.GradientThresholds(ev, mu)
	fmt.Printf("\nbrute force: %v\n", bf)
	fmt.Printf("gradient:    %v  (%.1fx fewer evaluations)\n", gd, float64(bf.Evals)/float64(gd.Evals))

	// Deploy the optimum.
	clk := croesus.NewSimClock()
	sys := croesus.NewSystem(clk)
	edgeCloud := croesus.EdgeCloudCrossCountry()
	p, err := croesus.NewPipeline(croesus.Config{
		Clock:      clk,
		EdgeModel:  edge,
		CloudModel: cloud,
		EdgeCloud:  edgeCloud,
		ThetaL:     bf.ThetaL,
		ThetaU:     bf.ThetaU,
		Source:     croesus.NewWorkloadSource(1000, 7),
		CC:         sys.MSIA(),
		Mgr:        sys.Manager,
	})
	if err != nil {
		panic(err)
	}
	outs := p.ProcessVideo(frames)
	truth := croesus.TruthFromModel(cloud, frames)
	sum := croesus.Summarize(prof.Name, croesus.ModeCroesus, prof.QueryClass, outs, truth, 0.10)

	fmt.Printf("\ndeployed at (%.2f, %.2f):\n", bf.ThetaL, bf.ThetaU)
	fmt.Printf("  F-score            %.3f (constraint µ=%.2f)\n", sum.F1Final, mu)
	fmt.Printf("  bandwidth utilized %.1f%% of frames\n", sum.BU*100)
	fmt.Printf("  initial commit     %v (edge-speed response)\n", sum.MeanInitialLatency.Round(time.Millisecond))
	fmt.Printf("  final commit       %v\n", sum.MeanFinalLatency.Round(time.Millisecond))

	bytes, msgs := edgeCloud.Traffic()
	fmt.Printf("  edge→cloud traffic %.1f MB in %d messages\n", float64(bytes)/(1<<20), msgs)
	fmt.Printf("  egress cost        $%.4f at $0.09/GiB (vs $%.4f sending every frame)\n",
		edgeCloud.CostUSD(0.09), allFramesCost(frames)*0.09)
}

func allFramesCost(frames []*croesus.Frame) float64 {
	var total int
	for _, f := range frames {
		total += f.SizeBytes
	}
	return float64(total) / (1 << 30)
}
