// Argame replays the multi-player AR game of §4.4: players transfer tokens
// when the camera detects the recipient. Transfers are MS-IA multi-stage
// transactions — the initial section applies the transfer optimistically
// (the "guess"), and the final section reconciles against the cloud model's
// corrected labels (the "apology"), retracting the transfer and its
// dependents when the edge model identified the wrong player.
//
// The scenario is the paper's own: A has 50 tokens, B has 10. t1 transfers
// 50 A→B, then t2 (B→C, 10) and t3 (B→C, 50) spend the received tokens.
// The cloud reveals that t1's true recipient was D — retracting t1 must
// cascade through t2 and t3, then replay A→D, leaving the application
// invariants intact (no negative balances, token supply conserved).
//
//	go run ./examples/argame
package main

import (
	"errors"
	"fmt"

	"croesus"
)

var players = []string{"A", "B", "C", "D"}

func tokKey(p string) string { return "tok:" + p }

func allKeys() []string {
	keys := make([]string, len(players))
	for i, p := range players {
		keys[i] = tokKey(p)
	}
	return keys
}

func balance(sys *croesus.System, p string) int64 {
	v, _ := sys.Store.Get(tokKey(p))
	return int64FromValue(v)
}

func int64FromValue(v croesus.Value) int64 {
	if len(v) != 8 {
		return 0
	}
	var n int64
	for _, b := range v {
		n = n<<8 | int64(b)
	}
	return n
}

func valueFromInt64(n int64) croesus.Value {
	v := make(croesus.Value, 8)
	for i := 7; i >= 0; i-- {
		v[i] = byte(n)
		n >>= 8
	}
	return v
}

// transfer builds the multi-stage transfer(from, to, amount) transaction.
// correctTo simulates the cloud model's verdict on who the recipient really
// was ("" means the edge guess was right).
func transfer(from, to string, amount int64, correctTo string) *croesus.Txn {
	rw := croesus.RWSet{Writes: allKeys()}
	move := func(c *croesus.TxnCtx, src, dst string) {
		sv, _ := c.Get(tokKey(src))
		dv, _ := c.Get(tokKey(dst))
		c.Put(tokKey(src), valueFromInt64(int64FromValue(sv)-amount))
		c.Put(tokKey(dst), valueFromInt64(int64FromValue(dv)+amount))
	}
	return &croesus.Txn{
		Name:      fmt.Sprintf("transfer-%s→%s-%d", from, to, amount),
		InitialRW: rw,
		FinalRW:   rw,
		Initial: func(c *croesus.TxnCtx) error {
			move(c, from, to)
			fmt.Printf("  [guess]   %s pays %s %d tokens\n", from, to, amount)
			return nil
		},
		Final: func(c *croesus.TxnCtx) error {
			if correctTo == "" || correctTo == to {
				return nil // the guess held
			}
			// Apply-then-check failed: retract this transfer and every
			// transaction that consumed its tokens, then replay.
			apologies := c.Retract(fmt.Sprintf("recipient was really %s, not %s", correctTo, to))
			for _, a := range apologies {
				fmt.Printf("  [apology] %s\n", a)
			}
			move(c, from, correctTo)
			fmt.Printf("  [replay]  %s pays %s %d tokens (corrected)\n", from, correctTo, amount)
			return nil
		},
	}
}

func main() {
	clk := croesus.NewSimClock()
	sys := croesus.NewSystem(clk)
	cc := sys.MSIA()

	sys.Store.Put(tokKey("A"), valueFromInt64(50))
	sys.Store.Put(tokKey("B"), valueFromInt64(10))
	sys.Store.Put(tokKey("C"), valueFromInt64(0))
	sys.Store.Put(tokKey("D"), valueFromInt64(0))
	printBalances(sys, "start")

	t1 := sys.Manager.NewInstance(transfer("A", "B", 50, "D"), nil) // edge misidentified D as B
	t2 := sys.Manager.NewInstance(transfer("B", "C", 10, ""), nil)
	t3 := sys.Manager.NewInstance(transfer("B", "C", 50, ""), nil)

	clk.Run(func() {
		fmt.Println("\n-- initial sections (edge guesses) --")
		for _, in := range []*croesus.TxnInstance{t1, t2, t3} {
			if err := cc.RunInitial(in); err != nil {
				panic(err)
			}
		}
		printBalances(sys, "after guesses")

		fmt.Println("\n-- final sections (cloud verdicts arrive) --")
		// t2 and t3 had correct inputs; their finals terminate first.
		for _, in := range []*croesus.TxnInstance{t2, t3, t1} {
			if err := cc.RunFinal(in); err != nil && !errors.Is(err, croesus.ErrRetracted) {
				panic(err)
			}
		}
	})
	printBalances(sys, "after reconciliation")

	// Application invariants.
	total := int64(0)
	ok := true
	for _, p := range players {
		b := balance(sys, p)
		total += b
		if b < 0 {
			ok = false
		}
	}
	fmt.Printf("\ninvariants: supply=%d (want 60), non-negative=%v\n", total, ok)
	fmt.Printf("t2 state: %s, t3 state: %s (cascaded retraction)\n", t2.State(), t3.State())
	st := sys.Manager.Stats()
	fmt.Printf("stats: %d retractions, %d apologies\n", st.Retractions, st.Apologies)
}

func printBalances(sys *croesus.System, label string) {
	fmt.Printf("balances (%s): ", label)
	for _, p := range players {
		fmt.Printf("%s=%d ", p, balance(sys, p))
	}
	fmt.Println()
}
