module croesus

go 1.22
