package croesus

// One benchmark per paper table/figure (regenerating the experiment end to
// end on the virtual clock) plus micro-benchmarks for the load-bearing
// components. Run everything with:
//
//	go test -bench=. -benchmem
//
// For full-scale experiment output use cmd/croesus-bench instead; the
// benchmarks here use reduced frame counts so the whole suite stays fast.

import (
	"fmt"
	"testing"
	"time"

	"croesus/internal/core"
	"croesus/internal/experiments"
	"croesus/internal/lock"
	"croesus/internal/metrics"
	"croesus/internal/obs"
	"croesus/internal/store"
	"croesus/internal/threshold"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
	"croesus/internal/wire"
	"croesus/internal/workload"

	"math/rand"
)

// benchOpts keeps experiment benchmarks quick while preserving trends.
func benchOpts() experiments.Opts {
	return experiments.Opts{Frames: 40, Seed: 42, Mu: 0.80, GridStep: 0.1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, ok := experiments.ByID(id, benchOpts()); !ok {
			b.Fatalf("unknown experiment %q", id)
		}
	}
}

// --- Paper tables and figures -----------------------------------------------

func BenchmarkFigure2(b *testing.B)  { benchExperiment(b, "figure2") }
func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, "figure3") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "figure4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "figure5") }
func BenchmarkFigure6a(b *testing.B) { benchExperiment(b, "figure6a") }
func BenchmarkFigure6b(b *testing.B) { benchExperiment(b, "figure6b") }
func BenchmarkFigure6c(b *testing.B) { benchExperiment(b, "figure6c") }

// --- DESIGN.md ablations ------------------------------------------------------

func BenchmarkAblationPolicy(b *testing.B)    { benchExperiment(b, "ablation-policy") }
func BenchmarkAblationSequencer(b *testing.B) { benchExperiment(b, "ablation-sequencer") }
func BenchmarkAblationChain(b *testing.B)     { benchExperiment(b, "ablation-chain") }
func BenchmarkAblationTwoPC(b *testing.B)     { benchExperiment(b, "ablation-2pc") }
func BenchmarkAblationSmoothing(b *testing.B) { benchExperiment(b, "ablation-smoothing") }

// --- Micro-benchmarks ---------------------------------------------------------

func benchFrames(n int) []*video.Frame {
	return video.NewGenerator(video.StreetVehicles(), 11).Generate(n)
}

func BenchmarkEdgeModelDetect(b *testing.B) {
	m := TinyYOLOSim(42)
	frames := benchFrames(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Detect(frames[i%len(frames)])
	}
}

func BenchmarkCloudModelDetect(b *testing.B) {
	m := YOLOv3Sim(YOLO416, 42)
	frames := benchFrames(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Detect(frames[i%len(frames)])
	}
}

func BenchmarkLabelMatching(b *testing.B) {
	edge := TinyYOLOSim(42)
	cloud := YOLOv3Sim(YOLO416, 42)
	frames := benchFrames(32)
	type pair struct{ e, c []Detection }
	pairs := make([]pair, len(frames))
	for i, f := range frames {
		pairs[i] = pair{edge.Detect(f).Detections, cloud.Detect(f).Detections}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		core.MatchLabels(p.e, p.c, 0.10)
	}
}

func BenchmarkScoreClass(b *testing.B) {
	edge := TinyYOLOSim(42)
	cloud := YOLOv3Sim(YOLO416, 42)
	f := benchFrames(1)[0]
	e, c := edge.Detect(f).Detections, cloud.Detect(f).Detections
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ScoreClass(e, c, "car", 0.10)
	}
}

func BenchmarkThresholdEvaluate(b *testing.B) {
	frames := benchFrames(100)
	ev := threshold.NewEvaluator(frames, TinyYOLOSim(42), YOLOv3Sim(YOLO416, 42), "car", 0.10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Evaluate(0.4, 0.6)
	}
}

func BenchmarkBruteForceThresholds(b *testing.B) {
	frames := benchFrames(60)
	ev := threshold.NewEvaluator(frames, TinyYOLOSim(42), YOLOv3Sim(YOLO416, 42), "car", 0.10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		threshold.BruteForce(ev, 0.8, 0.05)
	}
}

func BenchmarkGradientThresholds(b *testing.B) {
	frames := benchFrames(60)
	ev := threshold.NewEvaluator(frames, TinyYOLOSim(42), YOLOv3Sim(YOLO416, 42), "car", 0.10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		threshold.GradientStep(ev, 0.8)
	}
}

func BenchmarkStorePutGet(b *testing.B) {
	st := store.New()
	v := store.Int64Value(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := store.ItoaKey("k", i%4096)
		st.Put(k, v)
		st.Get(k)
	}
}

func BenchmarkLockAcquireRelease(b *testing.B) {
	m := lock.NewManager(vclock.NewReal())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := lock.Owner(i)
		m.Acquire(o, "k", lock.Exclusive)
		m.Release(o, "k")
	}
}

// benchTxn runs one two-section transaction through a CC on a real clock.
func benchTxn(b *testing.B, mk func(m *txn.Manager) txn.CC) {
	clk := vclock.NewReal()
	m := txn.NewManager(clk, store.New(), lock.NewManager(clk))
	cc := mk(m)
	body := &txn.Txn{
		Name:      "bench",
		InitialRW: txn.RWSet{Writes: []string{"a", "b", "c"}},
		FinalRW:   txn.RWSet{Writes: []string{"a"}},
		Initial: func(c *txn.Ctx) error {
			c.Put("a", store.Int64Value(1))
			c.Put("b", store.Int64Value(2))
			c.Put("c", store.Int64Value(3))
			return nil
		},
		Final: func(c *txn.Ctx) error {
			c.Put("a", store.Int64Value(9))
			return nil
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := m.NewInstance(body, nil)
		if err := cc.RunInitial(inst); err != nil {
			b.Fatal(err)
		}
		if err := cc.RunFinal(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSIATransaction(b *testing.B) {
	benchTxn(b, func(m *txn.Manager) txn.CC { return &txn.MSIA{M: m} })
}

func BenchmarkMSSRTransaction(b *testing.B) {
	benchTxn(b, func(m *txn.Manager) txn.CC { return &txn.MSSR{M: m, Policy: txn.Wait} })
}

func BenchmarkSequencerWaves(b *testing.B) {
	clk := vclock.NewReal()
	m := txn.NewManager(clk, store.New(), lock.NewManager(clk))
	rng := rand.New(rand.NewSource(6))
	var insts []*txn.Instance
	for i := 0; i < 50; i++ {
		ops := workload.UpdateOps(rng, "hot", 100, 5)
		var rw txn.RWSet
		for _, op := range ops {
			rw.Writes = append(rw.Writes, op.Key)
		}
		insts = append(insts, m.NewInstance(&txn.Txn{
			Name: "w", InitialRW: rw, FinalRW: txn.RWSet{},
			Initial: func(c *txn.Ctx) error { return nil },
			Final:   func(c *txn.Ctx) error { return nil },
		}, nil))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn.Waves(insts, txn.StageInitial)
	}
}

// BenchmarkPipelineVideo measures simulated-pipeline throughput: how much
// wall time one virtual-clock frame costs end to end.
func BenchmarkPipelineVideo(b *testing.B) {
	frames := benchFrames(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk := vclock.NewSim()
		sys := NewSystem(clk)
		p, err := NewPipeline(Config{
			Clock:      clk,
			EdgeModel:  TinyYOLOSim(42),
			CloudModel: YOLOv3Sim(YOLO416, 42),
			ThetaL:     0.4, ThetaU: 0.62,
			Source: NewWorkloadSource(1000, 7),
			CC:     &txn.MSIA{M: sys.Manager},
			Mgr:    sys.Manager,
		})
		if err != nil {
			b.Fatal(err)
		}
		p.ProcessVideo(frames)
	}
	b.ReportMetric(float64(len(frames)*b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkCluster measures fleet simulation throughput — how many
// virtual frames per second of wall time the cluster runtime sustains as
// the camera count grows (two edges, one batched cloud validator).
func BenchmarkCluster(b *testing.B) {
	profiles := Videos()
	for _, nCams := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("cams-%d", nCams), func(b *testing.B) {
			cams := make([]CameraSpec, nCams)
			for i := range cams {
				cams[i] = CameraSpec{
					Profile: profiles[i%len(profiles)],
					Seed:    int64(11 + i*101),
					Frames:  32,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := RunCluster(ClusterConfig{
					Clock:   NewSimClock(),
					Cameras: cams,
					Edges:   []EdgeSpec{{ID: "west"}, {ID: "east"}},
					Batcher: BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Frames != nCams*32 {
					b.Fatalf("lost frames: %d of %d", rep.Frames, nCams*32)
				}
			}
			b.ReportMetric(float64(nCams*32*b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkClusterScale pushes the simulator to fleet scale: 64, 256, and
// 1024 cameras over proportionally sized edge tiers (16 cameras per edge),
// 8 frames each. The cams-1024/edges-64 point is the headline capacity
// number recorded in BENCH_6.json; the metric is virtual frames simulated
// per second of wall time.
func BenchmarkClusterScale(b *testing.B) {
	profiles := Videos()
	const framesPerCam = 8
	for _, tc := range []struct{ cams, edges int }{{64, 4}, {256, 16}, {1024, 64}} {
		b.Run(fmt.Sprintf("cams-%d", tc.cams), func(b *testing.B) {
			cams := make([]CameraSpec, tc.cams)
			for i := range cams {
				cams[i] = CameraSpec{
					Profile: profiles[i%len(profiles)],
					Seed:    int64(11 + i*101),
					Frames:  framesPerCam,
				}
			}
			edges := make([]EdgeSpec, tc.edges)
			for i := range edges {
				edges[i] = EdgeSpec{ID: fmt.Sprintf("edge-%02d", i)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := RunCluster(ClusterConfig{
					Clock:   NewSimClock(),
					Cameras: cams,
					Edges:   edges,
					Batcher: BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Frames != tc.cams*framesPerCam {
					b.Fatalf("lost frames: %d of %d", rep.Frames, tc.cams*framesPerCam)
				}
			}
			b.ReportMetric(float64(tc.cams*framesPerCam*b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkCluster2PC measures the sharded fleet: six cameras over three
// edge shards of one keyspace, half of every transaction's keys crossing
// edges, under each multi-stage protocol. The metric is virtual frames
// simulated per second of wall time with the full remote-lock/2PC
// machinery engaged.
func BenchmarkCluster2PC(b *testing.B) {
	profiles := Videos()
	for _, proto := range []ClusterTxnProtocol{TxnMSIA, TxnMSSR} {
		b.Run(proto.String(), func(b *testing.B) {
			cams := make([]CameraSpec, 6)
			for i := range cams {
				cams[i] = CameraSpec{
					Profile: profiles[i%len(profiles)],
					Seed:    int64(11 + i*101),
					Frames:  32,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := RunCluster(ClusterConfig{
					Clock:             NewSimClock(),
					Cameras:           cams,
					Edges:             []EdgeSpec{{ID: "west"}, {ID: "mid"}, {ID: "east"}},
					Batcher:           BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
					Sharded:           true,
					CrossEdgeFraction: 0.5,
					Protocol:          proto,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Frames != 6*32 {
					b.Fatalf("lost frames: %d of %d", rep.Frames, 6*32)
				}
				if rep.TwoPC.CrossEdgeCommits == 0 {
					b.Fatal("no cross-edge commits — the 2PC path was not exercised")
				}
			}
			b.ReportMetric(float64(6*32*b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkClusterFaults measures the fault-injected sharded fleet: the
// cluster-2pc setup plus a scripted schedule (an edge crash with
// WAL-backed recovery and a participant crash mid-2PC), so the metric
// includes WAL logging on every commit, crash handling, replay, and
// in-doubt resolution.
func BenchmarkClusterFaults(b *testing.B) {
	profiles := Videos()
	for _, proto := range []ClusterTxnProtocol{TxnMSIA, TxnMSSR} {
		b.Run(proto.String(), func(b *testing.B) {
			cams := make([]CameraSpec, 6)
			for i := range cams {
				cams[i] = CameraSpec{
					Profile: profiles[i%len(profiles)],
					Seed:    int64(11 + i*101),
					Frames:  32,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := RunCluster(ClusterConfig{
					Clock:             NewSimClock(),
					Cameras:           cams,
					Edges:             []EdgeSpec{{ID: "west"}, {ID: "mid"}, {ID: "east"}},
					Batcher:           BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
					CrossEdgeFraction: 0.5,
					Protocol:          proto,
					Faults: &FaultPlan{
						Crashes: []EdgeCrash{{Edge: 1, At: 4 * time.Second, RestartAfter: 2 * time.Second}},
						TwoPC:   []TwoPCCrash{{Edge: 2, Point: PointParticipantPrepared, Round: 1, RestartAfter: time.Second}},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Frames != 6*32 {
					b.Fatalf("lost frames: %d of %d", rep.Frames, 6*32)
				}
				if rep.Faults == nil || rep.Faults.Crashes != 2 || rep.Faults.Restarts != 2 {
					b.Fatalf("fault schedule not executed: %+v", rep.Faults)
				}
			}
			b.ReportMetric(float64(6*32*b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkTransport compares the two fleet transports' per-message
// overhead at frame-like (32 KiB) and protocol-like (256 B) payloads: the
// in-process simulated path (a netsim link charging virtual time — wall
// cost is the scheduler) versus the loopback TCP path (a real gob-framed
// socket round trip per send). The gap is the price of running a scenario
// with -transport tcp; baseline recorded in BENCH_4.json.
func BenchmarkTransport(b *testing.B) {
	payloads := []struct {
		name string
		n    int
	}{{"frame-32KiB", 32 << 10}, {"msg-256B", 256}}

	for _, p := range payloads {
		p := p
		b.Run("sim/"+p.name, func(b *testing.B) {
			tr := transport.NewSim()
			if err := tr.Provision([]transport.EdgeProfile{{ID: "a"}}); err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			clk := vclock.NewSim()
			path := tr.ClientEdge(0)
			b.ReportAllocs()
			b.ResetTimer()
			clk.Run(func() {
				for i := 0; i < b.N; i++ {
					path.Send(clk, p.n)
				}
			})
		})
		b.Run("tcp/"+p.name, func(b *testing.B) {
			tr := transport.NewTCP()
			if err := tr.Provision([]transport.EdgeProfile{{ID: "a"}}); err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			clk := vclock.NewReal()
			path := tr.ClientEdge(0)
			path.Send(clk, p.n) // dial outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path.Send(clk, p.n)
			}
			b.StopTimer()
			if _, m := path.Traffic(); m != int64(b.N)+1 {
				b.Fatalf("delivered %d messages, want %d", m, b.N+1)
			}
		})
		b.Run("tcp-traced/"+p.name, func(b *testing.B) {
			// The tracing tax: every send carries a wire.TraceCtx and
			// emits a net.hop span against a real clock. Baseline in
			// BENCH_5.json.
			tr := transport.NewTCP()
			if err := tr.Provision([]transport.EdgeProfile{{ID: "a"}}); err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			clk := vclock.NewReal()
			tr.SetObs(obs.New(), clk)
			tc := &wire.TraceCtx{Trace: 1, Parent: 2}
			path := tr.ClientEdge(0)
			transport.SendCtx(path, clk, p.n, tc) // dial outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				transport.SendCtx(path, clk, p.n, tc)
			}
			b.StopTimer()
			if _, m := path.Traffic(); m != int64(b.N)+1 {
				b.Fatalf("delivered %d messages, want %d", m, b.N+1)
			}
		})
	}
}

// BenchmarkVirtualClock measures the scheduler's sleep/wake cost.
func BenchmarkVirtualClock(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := vclock.NewSim()
		for g := 0; g < 16; g++ {
			g := g
			s.Go(func() {
				for k := 0; k < 8; k++ {
					s.Sleep(time.Duration(g+k) * time.Millisecond)
				}
			})
		}
		s.Wait()
	}
}
