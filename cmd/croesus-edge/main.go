// Command croesus-edge runs the edge node: the compact model, the data
// store with multi-stage (MS-IA) transaction processing, bandwidth
// thresholding, and the cloud validation path.
//
// Usage:
//
//	croesus-edge -addr :9401 -cloud localhost:9402 -thetal 0.4 -thetau 0.6
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/tcpnet"
)

func main() {
	var (
		addr      = flag.String("addr", ":9401", "listen address for clients")
		cloudAddr = flag.String("cloud", "", "cloud node address (empty: edge-only mode)")
		seed      = flag.Int64("seed", 42, "model seed (must match cloud/client)")
		thetaL    = flag.Float64("thetal", 0.40, "lower confidence threshold θL (discard below)")
		thetaU    = flag.Float64("thetau", 0.62, "upper confidence threshold θU (keep above)")
		timeScale = flag.Float64("timescale", 1.0, "inference latency multiplier")
		keys      = flag.Int("keys", 1000, "database key space for the per-detection transactions")
	)
	flag.Parse()

	srv, err := tcpnet.NewEdgeServer(tcpnet.EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(*seed),
		CloudAddr: *cloudAddr,
		TimeScale: *timeScale,
		ThetaL:    *thetaL,
		ThetaU:    *thetaU,
		Source:    core.NewWorkloadSource(*keys, *seed),
		Logf:      tcpnet.StdLogf("edge"),
	})
	if err != nil {
		log.Fatalf("croesus-edge: %v", err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("croesus-edge: %v", err)
	}
	mode := "croesus (cloud " + *cloudAddr + ")"
	if *cloudAddr == "" {
		mode = "edge-only"
	}
	log.Printf("croesus-edge: serving on %s, mode %s, thresholds (%.2f, %.2f)", bound, mode, *thetaL, *thetaU)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := srv.Manager().Stats()
	log.Printf("croesus-edge: shutting down — %d frames, %d initial commits, %d final commits, %d aborts, %d apologies",
		srv.Served(), st.InitialCommits, st.FinalCommits, st.Aborts, st.Apologies)
	srv.Close()
}
