// Command croesus-edge runs the edge node: the compact model, the data
// store with multi-stage (MS-IA or MS-SR) transaction processing,
// bandwidth thresholding, and the cloud validation path — the same
// fleet-node assembly and Figure-1 pipeline the simulated fleet runs,
// over real sockets.
//
// Usage:
//
//	croesus-edge -addr :9401 -cloud localhost:9402 -thetal 0.4 -thetau 0.6
//	croesus-edge -protocol ms-sr -minconf 0.10 -overlap 0.15
//	croesus-edge -wal edge.wal -control 127.0.0.1:0 -ready-file edge.ready
//
// Under croesus-fleet the orchestrator passes -control (the fleet
// control channel: reports, drain, link faults, WAL checkpoint/verify,
// quit), -ready-file (bound-address handshake for :0 listeners), -wal
// (crash durability: a SIGKILLed edge respawned on the same path
// replays its committed state), and -shape-client/-shape-cloud (the
// sim's modeled link parameters on the real hops).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/fleet"
	"croesus/internal/node"
	"croesus/internal/obs"
	"croesus/internal/tcpnet"
	"croesus/internal/transport"
)

func main() {
	var (
		addr        = flag.String("addr", ":9401", "listen address for clients")
		cloudAddr   = flag.String("cloud", "", "cloud node address (empty: edge-only mode)")
		id          = flag.String("id", "edge", "edge identity in fleet reports, metrics, and traces")
		seed        = flag.Int64("seed", 42, "model seed (must match cloud/client)")
		thetaL      = flag.Float64("thetal", 0.40, "lower confidence threshold θL (discard below)")
		thetaU      = flag.Float64("thetau", 0.62, "upper confidence threshold θU (keep above)")
		minConf     = flag.Float64("minconf", 0.05, "minimum detection confidence kept at input processing")
		overlap     = flag.Float64("overlap", 0.10, "label-matching overlap threshold for cloud corrections")
		protocol    = flag.String("protocol", "ms-ia", "multi-stage protocol: ms-ia or ms-sr")
		slots       = flag.Int("slots", 4, "concurrent edge inferences across all clients")
		timeScale   = flag.Float64("timescale", 1.0, "inference latency multiplier")
		keys        = flag.Int("keys", 1000, "database key space for the per-detection transactions")
		walPath     = flag.String("wal", "", "write-ahead log path: journal transactional writes, replay them at startup (crash durability)")
		walNoSync   = flag.Bool("wal-nosync", false, "skip the per-append fsync (process-crash safe; only a machine crash can lose the tail)")
		shapeClient = flag.String("shape-client", "", "shape the client→edge hop with a modeled link \"propagation:bytes-per-sec\" (e.g. 5ms:1.25e9)")
		shapeCloud  = flag.String("shape-cloud", "", "shape the edge→cloud hop with a modeled link \"propagation:bytes-per-sec\"")
		controlAddr = flag.String("control", "", "serve the fleet control channel on this address (e.g. 127.0.0.1:0)")
		readyFile   = flag.String("ready-file", "", "write a JSON ready file with the bound addresses once listening")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof on this address (e.g. 127.0.0.1:9411)")
		traceOut    = flag.String("trace", "", "record spans and write them as JSONL to this file at shutdown (merge with croesus-trace)")
	)
	flag.Parse()

	proto, err := node.ParseProtocol(*protocol)
	if err != nil {
		log.Fatalf("croesus-edge: %v", err)
	}
	clientShape, err := transport.ParseLinkSpec(*shapeClient)
	if err != nil {
		log.Fatalf("croesus-edge: -shape-client: %v", err)
	}
	cloudShape, err := transport.ParseLinkSpec(*shapeCloud)
	if err != nil {
		log.Fatalf("croesus-edge: -shape-cloud: %v", err)
	}
	var o *obs.Obs
	if *debugAddr != "" || *traceOut != "" {
		o = obs.New()
		o.Tracer().SetProc(*id)
	}
	debugBound := ""
	if *debugAddr != "" {
		debugBound, err = obs.ServeDebug(*debugAddr, o.Reg)
		if err != nil {
			log.Fatalf("croesus-edge: %v", err)
		}
		log.Printf("croesus-edge: debug endpoint on http://%s/metrics", debugBound)
	}
	srv, err := tcpnet.NewEdgeServer(tcpnet.EdgeConfig{
		EdgeModel:       detect.TinyYOLOSim(*seed),
		CloudAddr:       *cloudAddr,
		TimeScale:       *timeScale,
		ThetaL:          *thetaL,
		ThetaU:          *thetaU,
		MinConfidence:   *minConf,
		OverlapMin:      *overlap,
		Protocol:        proto,
		Slots:           *slots,
		Source:          core.NewWorkloadSource(*keys, *seed),
		Logf:            tcpnet.StdLogf("edge"),
		Obs:             o,
		EdgeID:          *id,
		WALPath:         *walPath,
		WALNoSync:       *walNoSync,
		ClientEdgeShape: clientShape,
		EdgeCloudShape:  cloudShape,
	})
	if err != nil {
		log.Fatalf("croesus-edge: %v", err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("croesus-edge: %v", err)
	}
	if n := srv.WALReplayed(); n > 0 {
		log.Printf("croesus-edge: replayed %d WAL records from %s", n, *walPath)
	}
	mode := "croesus (cloud " + *cloudAddr + ")"
	if *cloudAddr == "" {
		mode = "edge-only"
	}
	log.Printf("croesus-edge: serving on %s, mode %s, protocol %s, thresholds (%.2f, %.2f), minconf %.2f, overlap %.2f",
		bound, mode, proto, *thetaL, *thetaU, *minConf, *overlap)

	// The fleet control channel: the orchestrator's quit op and a SIGTERM
	// take the same graceful-shutdown path (flushed trace, final stats).
	quit := make(chan struct{})
	var once sync.Once
	requestQuit := func() { once.Do(func() { close(quit) }) }
	var ctl *fleet.ControlServer
	if *controlAddr != "" {
		ctl, err = fleet.ServeControl(*controlAddr, fleet.EdgeHandlers(*id, srv, requestQuit))
		if err != nil {
			log.Fatalf("croesus-edge: control: %v", err)
		}
		log.Printf("croesus-edge: control channel on %s", ctl.Addr())
	}
	if *readyFile != "" {
		info := fleet.ReadyInfo{Role: "edge", Addr: bound, Debug: debugBound}
		if ctl != nil {
			info.Control = ctl.Addr()
		}
		if err := fleet.WriteReady(*readyFile, info); err != nil {
			log.Fatalf("croesus-edge: ready file: %v", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case <-quit:
	}
	st := srv.Manager().Stats()
	log.Printf("croesus-edge: shutting down — %d frames (%d shed by the cloud), %d initial commits, %d final commits, %d aborts, %d apologies",
		srv.Served(), srv.Shed(), st.InitialCommits, st.FinalCommits, st.Aborts, st.Apologies)
	if ctl != nil {
		ctl.Close()
	}
	srv.Close()
	if *traceOut != "" {
		writeTrace(*traceOut, o)
	}
}

func writeTrace(path string, o *obs.Obs) {
	f, err := os.Create(path)
	if err != nil {
		log.Printf("croesus-edge: trace: %v", err)
		return
	}
	defer f.Close()
	spans := o.Tracer().Spans()
	if err := obs.WriteJSONL(f, spans); err != nil {
		log.Printf("croesus-edge: trace: %v", err)
		return
	}
	log.Printf("croesus-edge: wrote %s (%s)", path, obs.DescribeTrace(spans))
}
