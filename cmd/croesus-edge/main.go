// Command croesus-edge runs the edge node: the compact model, the data
// store with multi-stage (MS-IA or MS-SR) transaction processing,
// bandwidth thresholding, and the cloud validation path — the same
// fleet-node assembly and Figure-1 pipeline the simulated fleet runs,
// over real sockets.
//
// Usage:
//
//	croesus-edge -addr :9401 -cloud localhost:9402 -thetal 0.4 -thetau 0.6
//	croesus-edge -protocol ms-sr -minconf 0.10 -overlap 0.15
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/node"
	"croesus/internal/obs"
	"croesus/internal/tcpnet"
)

func main() {
	var (
		addr      = flag.String("addr", ":9401", "listen address for clients")
		cloudAddr = flag.String("cloud", "", "cloud node address (empty: edge-only mode)")
		seed      = flag.Int64("seed", 42, "model seed (must match cloud/client)")
		thetaL    = flag.Float64("thetal", 0.40, "lower confidence threshold θL (discard below)")
		thetaU    = flag.Float64("thetau", 0.62, "upper confidence threshold θU (keep above)")
		minConf   = flag.Float64("minconf", 0.05, "minimum detection confidence kept at input processing")
		overlap   = flag.Float64("overlap", 0.10, "label-matching overlap threshold for cloud corrections")
		protocol  = flag.String("protocol", "ms-ia", "multi-stage protocol: ms-ia or ms-sr")
		slots     = flag.Int("slots", 4, "concurrent edge inferences across all clients")
		timeScale = flag.Float64("timescale", 1.0, "inference latency multiplier")
		keys      = flag.Int("keys", 1000, "database key space for the per-detection transactions")
		debugAddr = flag.String("debug-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof on this address (e.g. 127.0.0.1:9411)")
		traceOut  = flag.String("trace", "", "record spans and write them as JSONL to this file at shutdown (merge with croesus-trace)")
	)
	flag.Parse()

	proto, err := node.ParseProtocol(*protocol)
	if err != nil {
		log.Fatalf("croesus-edge: %v", err)
	}
	var o *obs.Obs
	if *debugAddr != "" || *traceOut != "" {
		o = obs.New()
		o.Tracer().SetProc("edge")
	}
	if *debugAddr != "" {
		bound, err := obs.ServeDebug(*debugAddr, o.Reg)
		if err != nil {
			log.Fatalf("croesus-edge: %v", err)
		}
		log.Printf("croesus-edge: debug endpoint on http://%s/metrics", bound)
	}
	srv, err := tcpnet.NewEdgeServer(tcpnet.EdgeConfig{
		EdgeModel:     detect.TinyYOLOSim(*seed),
		CloudAddr:     *cloudAddr,
		TimeScale:     *timeScale,
		ThetaL:        *thetaL,
		ThetaU:        *thetaU,
		MinConfidence: *minConf,
		OverlapMin:    *overlap,
		Protocol:      proto,
		Slots:         *slots,
		Source:        core.NewWorkloadSource(*keys, *seed),
		Logf:          tcpnet.StdLogf("edge"),
		Obs:           o,
	})
	if err != nil {
		log.Fatalf("croesus-edge: %v", err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("croesus-edge: %v", err)
	}
	mode := "croesus (cloud " + *cloudAddr + ")"
	if *cloudAddr == "" {
		mode = "edge-only"
	}
	log.Printf("croesus-edge: serving on %s, mode %s, protocol %s, thresholds (%.2f, %.2f), minconf %.2f, overlap %.2f",
		bound, mode, proto, *thetaL, *thetaU, *minConf, *overlap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := srv.Manager().Stats()
	log.Printf("croesus-edge: shutting down — %d frames (%d shed by the cloud), %d initial commits, %d final commits, %d aborts, %d apologies",
		srv.Served(), srv.Shed(), st.InitialCommits, st.FinalCommits, st.Aborts, st.Apologies)
	srv.Close()
	if *traceOut != "" {
		writeTrace(*traceOut, o)
	}
}

func writeTrace(path string, o *obs.Obs) {
	f, err := os.Create(path)
	if err != nil {
		log.Printf("croesus-edge: trace: %v", err)
		return
	}
	defer f.Close()
	spans := o.Tracer().Spans()
	if err := obs.WriteJSONL(f, spans); err != nil {
		log.Printf("croesus-edge: trace: %v", err)
		return
	}
	log.Printf("croesus-edge: wrote %s (%s)", path, obs.DescribeTrace(spans))
}
