package main

import (
	"os"
	"testing"

	"croesus"
)

// TestScenarioGolden pins the checked-in scenario smoke run: the same
// scenario file must reproduce the same report byte for byte. CI runs the
// binary against the same pair; if a change legitimately shifts the
// numbers, regenerate with
//
//	go run ./cmd/croesus-cluster -scenario cmd/croesus-cluster/testdata/migrate.json > cmd/croesus-cluster/testdata/migrate.golden
func TestScenarioGolden(t *testing.T) {
	s, err := croesus.LoadScenario("testdata/migrate.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := croesus.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/migrate.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Format(); got != string(want) {
		t.Fatalf("scenario report drifted from the golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
