package main

import (
	"os"
	"testing"

	"croesus"
)

// TestScenarioGolden pins the checked-in scenario smoke run: the same
// scenario file must reproduce the same report byte for byte. CI runs the
// binary against the same pair; if a change legitimately shifts the
// numbers, regenerate with
//
//	go run ./cmd/croesus-cluster -scenario cmd/croesus-cluster/testdata/migrate.json > cmd/croesus-cluster/testdata/migrate.golden
func TestScenarioGolden(t *testing.T) {
	s, err := croesus.LoadScenario("testdata/migrate.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := croesus.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/migrate.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Format(); got != string(want) {
		t.Fatalf("scenario report drifted from the golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestGraphScenarioGolden pins the inference-graph scenario smoke run:
// the depth-3 graph (edge detect → peer classify → cloud verify, with a
// confidence switch short-circuiting past the cloud) must reproduce the
// same per-section report byte for byte. Regenerate with
//
//	go run ./cmd/croesus-cluster -scenario cmd/croesus-cluster/testdata/graph.json > cmd/croesus-cluster/testdata/graph.golden
func TestGraphScenarioGolden(t *testing.T) {
	s, err := croesus.LoadScenario("testdata/graph.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := croesus.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/graph.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Format(); got != string(want) {
		t.Fatalf("graph scenario report drifted from the golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
	if len(rep.Sections) != 3 {
		t.Fatalf("graph golden carries %d section rows, want 3", len(rep.Sections))
	}
}

// TestGraphScenarioOnTCP runs the same graph scenario file over the
// loopback TCP transport: the cloud-tier section crosses the real socket
// per boundary, so the run is wall-clock concurrent and checked by
// counters, not bytes.
func TestGraphScenarioOnTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP run in -short mode")
	}
	s, err := croesus.LoadScenario("testdata/graph.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := croesus.RunScenarioWith(s, croesus.ScenarioOptions{Transport: croesus.TransportTCP, TimeScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames == 0 {
		t.Fatal("TCP graph run processed no frames")
	}
	if rep.Transport == nil || rep.Transport.Name != "tcp" || rep.Transport.Messages == 0 {
		t.Fatalf("no transport traffic recorded: %+v", rep.Transport)
	}
}

// TestScenarioGoldenOnTCP runs the very same checked-in scenario file over
// the loopback TCP transport — the unified-runtime acceptance: one
// scenario JSON, two deployments. The TCP run is wall-clock concurrent,
// so it is not byte-pinned; instead it must complete the whole fleet with
// validated, 2PC, fault, and transport counters populated, and the
// timeline's edge crash must show up as transport-level teardowns.
func TestScenarioGoldenOnTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP run in -short mode")
	}
	s, err := croesus.LoadScenario("testdata/migrate.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := croesus.RunScenarioWith(s, croesus.ScenarioOptions{Transport: croesus.TransportTCP, TimeScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames == 0 || rep.Validated == 0 {
		t.Errorf("TCP run validated nothing: %d frames, %d validated", rep.Frames, rep.Validated)
	}
	if got := rep.TwoPC.CrossEdgeCommits + rep.TwoPC.LocalCommits + rep.TwoPC.RemoteCommits; got == 0 {
		t.Error("TCP run counted no 2PC/commit activity")
	}
	if rep.Faults == nil || rep.Faults.Crashes == 0 || rep.Faults.Restarts == 0 {
		t.Errorf("timeline faults did not execute over TCP: %+v", rep.Faults)
	}
	if rep.Dynamic == nil || rep.Dynamic.Migrations != 1 {
		t.Errorf("timeline migration did not execute over TCP: %+v", rep.Dynamic)
	}
	if rep.Transport == nil || rep.Transport.Name != "tcp" || rep.Transport.Messages == 0 {
		t.Fatalf("no transport traffic recorded: %+v", rep.Transport)
	}
	if rep.Transport.Severs == 0 {
		t.Errorf("the edge_crash caused no transport teardown: %+v", rep.Transport)
	}
}
