// Command croesus-cluster runs a multi-camera edge fleet against one
// SLO-aware batched cloud validator on the virtual clock and prints the
// fleet report: per-camera accuracy and latency percentiles, fleet
// throughput, and the batcher's batching/shedding counters.
//
// The preferred interface is a declarative scenario file — topology plus
// event timeline (camera joins/leaves, migrations, workload shifts,
// faults, checkpoints); see the README's "Scenarios" section for the JSON
// schema:
//
//	croesus-cluster -scenario testdata/migrate.json
//
// The flag-assembled fleet remains for quick static runs (it is the
// deprecated path — every flag below maps to a scenario field):
//
//	croesus-cluster                          # 4 cameras, 2 edges
//	croesus-cluster -cameras 16 -edges 4     # bigger fleet
//	croesus-cluster -policy least-loaded     # placement policy
//	croesus-cluster -slo 40ms -pending 8 -cloud-speed 0.2   # overload
//	croesus-cluster -cross-edge 0.3 -protocol ms-sr          # sharded keyspace
//	croesus-cluster -cross-edge 0.3 -zipf 1.3                # hot shards
//	croesus-cluster -cross-edge 0.3 -crash-edge 1 -crash-at 5s -crash-restart 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"croesus"
	"croesus/internal/fleet"
	"croesus/internal/scenario"
)

func main() {
	var (
		scenarioPath  = flag.String("scenario", "", "run a declarative scenario file (topology + event timeline) instead of the flag-built fleet")
		validateOnly  = flag.Bool("validate", false, "dry run: load and validate -scenario (including its graph block), print the resolved section plan, and exit without running the fleet")
		traceOut      = flag.String("trace", "", "write the run's span trace to this file: Chrome trace_event JSON (open in Perfetto) by default, sorted JSONL when the name ends in .jsonl")
		debugAddr     = flag.String("debug-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof on this address during the run (e.g. 127.0.0.1:9090)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = flag.String("memprofile", "", "write a heap profile to this file at exit")
		transportKind = flag.String("transport", "sim", "fleet transport: sim (in-process, virtual clock, byte-deterministic), tcp (loopback TCP sockets on the wall clock), or fleet (real croesus-edge/cloud/client processes; scenarios only)")
		timeScale     = flag.Float64("timescale", 1.0, "wall-clock compression for -transport tcp/fleet: 0.05 runs a 20s scenario in ~1s (ignored on sim)")
		shaped        = flag.Bool("shaped", false, "shape the real hops of -transport tcp/fleet with the sim's modeled link parameters (latency + bandwidth), for like-for-like latency comparisons")
		binDir        = flag.String("bin", "", "directory holding the croesus-edge/cloud/client binaries for -transport fleet (default: this executable's directory)")
		nCams         = flag.Int("cameras", 4, "number of camera streams")
		nEdges        = flag.Int("edges", 2, "number of edge nodes")
		frames        = flag.Int("frames", 120, "frames per camera")
		seed          = flag.Int64("seed", 42, "model and video seed")
		policy        = flag.String("policy", "round-robin", "placement policy: round-robin or least-loaded")
		maxBatch      = flag.Int("batch", 8, "cloud batch size cap")
		slo           = flag.Duration("slo", 80*time.Millisecond, "cloud batch flush deadline")
		pending       = flag.Int("pending", 0, "admission-control cap on outstanding validations (default 4×batch)")
		cloudSpeed    = flag.Float64("cloud-speed", 1.0, "cloud machine speed factor (lower = starved GPU)")
		thetaL        = flag.Float64("theta-l", 0.40, "lower bandwidth threshold θL")
		thetaU        = flag.Float64("theta-u", 0.62, "upper bandwidth threshold θU")
		sharded       = flag.Bool("sharded", false, "shard the fleet keyspace across the edges (implied by -cross-edge > 0)")
		crossEdge     = flag.Float64("cross-edge", 0, "fraction of workload keys owned by another edge's shard [0,1]")
		protocol      = flag.String("protocol", "ms-ia", "multi-stage protocol: ms-ia or ms-sr")
		zipf          = flag.Float64("zipf", 0, "Zipf exponent for sharded workload keys (0 = uniform, >1 = skewed hot shards)")
		crashEdge     = flag.Int("crash-edge", -1, "fail-stop this edge mid-run (WAL-backed recovery; implies -sharded)")
		crashAt       = flag.Duration("crash-at", 5*time.Second, "virtual time of the scripted crash")
		crashRest     = flag.Duration("crash-restart", 2*time.Second, "outage length before the edge recovers from its WAL")
	)
	flag.Parse()

	if *validateOnly {
		if *scenarioPath == "" {
			fmt.Fprintln(os.Stderr, "croesus-cluster: -validate needs a -scenario file to check")
			os.Exit(2)
		}
		// Load runs the full decode + validation pass (strict fields,
		// topology references, graph shape); reaching this point means the
		// file would run.
		s, err := croesus.LoadScenario(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
			os.Exit(1)
		}
		proto := s.Topology.Protocol
		if proto == "" {
			proto = "ms-ia"
		}
		g := s.Topology.Graph
		if g == nil {
			// No graph block: the classic two-stage pipeline, shown as the
			// canonical graph it is equivalent to.
			g = &croesus.GraphSpec{Nodes: []croesus.GraphNodeSpec{{Tier: "edge"}, {Tier: "cloud"}}}
		}
		fmt.Printf("scenario %q: valid\n", s.Name)
		fmt.Printf("topology: %d edges, %d cameras, protocol %s, %d timeline events\n",
			len(s.Topology.Edges), len(s.Topology.Cameras), proto, len(s.Timeline))
		fmt.Printf("section plan (%d sections):\n%s", len(g.Nodes), g.Plan())
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	// Observability: a tracer + registry threaded through the fleet when
	// anything will consume them. The report itself never needs it.
	var o *croesus.Obs
	if *traceOut != "" || *debugAddr != "" {
		o = croesus.NewObs()
	}
	if *debugAddr != "" {
		addr, err := croesus.ServeDebug(*debugAddr, o.Reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/metrics\n", addr)
	}

	// The multi-process deployment plugs in as one more transport: the
	// scenario runner spawns real croesus-edge/cloud/client processes and
	// returns the same merged ClusterReport shape.
	if *transportKind == "fleet" {
		bin := *binDir
		if bin == "" {
			if exe, err := os.Executable(); err == nil {
				bin = filepath.Dir(exe)
			}
		}
		scenario.RegisterRunner("fleet", fleet.Runner(fleet.Options{
			BinDir: bin,
			Logf:   func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		}))
	}

	if *scenarioPath != "" {
		s, err := croesus.LoadScenario(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		rep, err := croesus.RunScenarioWith(s, croesus.ScenarioOptions{Transport: *transportKind, TimeScale: *timeScale, Shaped: *shaped, Obs: o})
		if err != nil {
			fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
			os.Exit(1)
		}
		// The report goes to stdout alone (on sim it is byte-reproducible
		// and diffable against a golden); wall time is a side note.
		fmt.Print(rep.Format())
		fmt.Fprintf(os.Stderr, "(scenario %q on %s: %s of fleet time in %s of wall time)\n",
			s.Name, *transportKind, rep.Elapsed.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
		writeTrace(*traceOut, o)
		return
	}

	if *transportKind == "fleet" {
		fmt.Fprintln(os.Stderr, "croesus-cluster: -transport fleet needs a -scenario file (the process fleet has no flag-built path)")
		os.Exit(2)
	}
	if *transportKind != "sim" && *transportKind != "tcp" {
		fmt.Fprintf(os.Stderr, "croesus-cluster: unknown transport %q\n", *transportKind)
		os.Exit(2)
	}

	var proto croesus.ClusterTxnProtocol
	switch *protocol {
	case "ms-ia":
		proto = croesus.TxnMSIA
	case "ms-sr":
		proto = croesus.TxnMSSR
	default:
		fmt.Fprintf(os.Stderr, "croesus-cluster: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	var placement croesus.Placement
	switch *policy {
	case "round-robin":
		placement = &croesus.RoundRobin{}
	case "least-loaded":
		placement = croesus.LeastLoaded{}
	default:
		fmt.Fprintf(os.Stderr, "croesus-cluster: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	profiles := croesus.Videos()
	cams := make([]croesus.CameraSpec, *nCams)
	for i := range cams {
		cams[i] = croesus.CameraSpec{
			ID:      fmt.Sprintf("cam%d", i),
			Profile: profiles[i%len(profiles)],
			Seed:    *seed + int64(i)*101,
			Frames:  *frames,
		}
	}
	edges := make([]croesus.EdgeSpec, *nEdges)
	for i := range edges {
		edges[i] = croesus.EdgeSpec{ID: fmt.Sprintf("edge%d", i)}
	}

	var plan *croesus.FaultPlan
	if *crashEdge >= 0 {
		if *crashEdge >= *nEdges {
			fmt.Fprintf(os.Stderr, "croesus-cluster: -crash-edge %d out of range (have %d edges)\n", *crashEdge, *nEdges)
			os.Exit(2)
		}
		plan = &croesus.FaultPlan{
			Crashes: []croesus.EdgeCrash{{Edge: *crashEdge, At: *crashAt, RestartAfter: *crashRest}},
		}
	}

	// The flag-built fleet honors -transport too: the same cluster runs on
	// the virtual clock over netsim links or on the wall clock over
	// loopback TCP sockets.
	clk := croesus.Clock(croesus.NewSimClock())
	var tr croesus.Transport
	if *transportKind == "tcp" {
		clk = croesus.NewScaledRealClock(*timeScale)
		tr = croesus.NewTCPTransport()
	}

	start := time.Now()
	rep, err := croesus.RunCluster(croesus.ClusterConfig{
		Clock:             clk,
		Transport:         tr,
		Cameras:           cams,
		Edges:             edges,
		Placement:         placement,
		Seed:              *seed,
		ThetaL:            *thetaL,
		ThetaU:            *thetaU,
		Sharded:           *sharded,
		CrossEdgeFraction: *crossEdge,
		Protocol:          proto,
		ZipfSkew:          *zipf,
		Faults:            plan,
		Obs:               o,
		Batcher: croesus.BatcherConfig{
			MaxBatch:   *maxBatch,
			SLO:        *slo,
			MaxPending: *pending,
			CloudSpeed: *cloudSpeed,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Format())
	fmt.Printf("(simulated %s of fleet time in %s of wall time)\n",
		rep.Elapsed.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	writeTrace(*traceOut, o)
}

// writeTrace exports the collected spans: Chrome trace_event JSON, or
// sorted JSONL when path ends in .jsonl.
func writeTrace(path string, o *croesus.Obs) {
	if path == "" || o == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
		os.Exit(1)
	}
	spans := o.Trace.Spans()
	if err := croesus.WriteTraceFile(f, path, spans); err != nil {
		fmt.Fprintf(os.Stderr, "croesus-cluster: writing trace: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "croesus-cluster: writing trace: %v\n", err)
		os.Exit(1)
	}
	if d := o.Trace.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "trace: %d spans dropped at the tracer's capacity — the file is incomplete\n", d)
	}
	fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", len(spans), path)
}

// writeMemProfile snapshots the heap to path at exit (no-op when unset).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "croesus-cluster: %v\n", err)
	}
}
