// Command croesus-cloud runs the cloud node: it listens for edge
// connections and answers frame-detection requests with the full model
// behind the fleet's shared SLO-aware validation batcher — requests from
// every connected edge coalesce into batches, and under overload the
// lowest-margin requests are shed back to their edges.
//
// Usage:
//
//	croesus-cloud -addr :9402 -model 416 -timescale 1.0
//	croesus-cloud -batch 8 -slo 80ms -pending 16 -cloud-speed 0.5
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"croesus/internal/detect"
	"croesus/internal/obs"
	"croesus/internal/tcpnet"
)

func main() {
	var (
		addr       = flag.String("addr", ":9402", "listen address")
		model      = flag.Int("model", 416, "cloud model size: 320, 416, or 608")
		seed       = flag.Int64("seed", 42, "model seed (must match the edge/client seed)")
		timeScale  = flag.Float64("timescale", 1.0, "inference latency multiplier (use <1 to speed up demos)")
		maxBatch   = flag.Int("batch", 0, "batch size cap (0 = fleet default 8)")
		slo        = flag.Duration("slo", 0, "batch flush deadline (0 = fleet default 60ms)")
		pending    = flag.Int("pending", 0, "admission-control cap on outstanding validations (0 = 4×batch)")
		cloudSpeed = flag.Float64("cloud-speed", 0, "cloud machine speed factor (0 = reference machine; lower = starved GPU)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof on this address (e.g. 127.0.0.1:9412)")
		traceOut   = flag.String("trace", "", "record spans and write them as JSONL to this file at shutdown (merge with croesus-trace)")
	)
	flag.Parse()

	var o *obs.Obs
	if *debugAddr != "" || *traceOut != "" {
		o = obs.New()
		o.Tracer().SetProc("cloud")
	}
	if *debugAddr != "" {
		bound, err := obs.ServeDebug(*debugAddr, o.Reg)
		if err != nil {
			log.Fatalf("croesus-cloud: %v", err)
		}
		log.Printf("croesus-cloud: debug endpoint on http://%s/metrics", bound)
	}
	m := detect.YOLOv3Sim(detect.YOLOSize(*model), *seed)
	srv, err := tcpnet.NewCloudServerWith(tcpnet.CloudConfig{
		Model:      m,
		TimeScale:  *timeScale,
		MaxBatch:   *maxBatch,
		SLO:        *slo,
		MaxPending: *pending,
		CloudSpeed: *cloudSpeed,
		Obs:        o,
	})
	if err != nil {
		log.Fatalf("croesus-cloud: %v", err)
	}
	srv.Logf = tcpnet.StdLogf("cloud")
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("croesus-cloud: %v", err)
	}
	log.Printf("croesus-cloud: %s serving on %s (timescale %.2f, batched + shedding validator)", m.Name(), bound, *timeScale)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	bs := srv.BatcherStats()
	log.Printf("croesus-cloud: shutting down after %d frames (%d shed); %d batches, mean %.1f, max flush wait %s",
		srv.Handled(), srv.Shed(), bs.Batches, bs.MeanBatch, bs.MaxFlushWait.Round(time.Millisecond))
	srv.Close()
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("croesus-cloud: trace: %v", err)
		}
		defer f.Close()
		spans := o.Tracer().Spans()
		if err := obs.WriteJSONL(f, spans); err != nil {
			log.Fatalf("croesus-cloud: trace: %v", err)
		}
		log.Printf("croesus-cloud: wrote %s (%s)", *traceOut, obs.DescribeTrace(spans))
	}
}
