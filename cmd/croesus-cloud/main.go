// Command croesus-cloud runs the cloud node: it listens for edge
// connections and answers frame-detection requests with the full model
// behind the fleet's shared SLO-aware validation batcher — requests from
// every connected edge coalesce into batches, and under overload the
// lowest-margin requests are shed back to their edges.
//
// Usage:
//
//	croesus-cloud -addr :9402 -model 416 -timescale 1.0
//	croesus-cloud -batch 8 -slo 80ms -pending 16 -cloud-speed 0.5
//	croesus-cloud -control 127.0.0.1:0 -ready-file cloud.ready
//
// Under croesus-fleet the orchestrator passes -control (the fleet
// control channel: report, quit) and -ready-file (bound-address
// handshake for :0 listeners).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"croesus/internal/detect"
	"croesus/internal/fleet"
	"croesus/internal/obs"
	"croesus/internal/tcpnet"
)

func main() {
	var (
		addr        = flag.String("addr", ":9402", "listen address")
		model       = flag.Int("model", 416, "cloud model size: 320, 416, or 608")
		seed        = flag.Int64("seed", 42, "model seed (must match the edge/client seed)")
		timeScale   = flag.Float64("timescale", 1.0, "inference latency multiplier (use <1 to speed up demos)")
		maxBatch    = flag.Int("batch", 0, "batch size cap (0 = fleet default 8)")
		slo         = flag.Duration("slo", 0, "batch flush deadline (0 = fleet default 60ms)")
		pending     = flag.Int("pending", 0, "admission-control cap on outstanding validations (0 = 4×batch)")
		cloudSpeed  = flag.Float64("cloud-speed", 0, "cloud machine speed factor (0 = reference machine; lower = starved GPU)")
		controlAddr = flag.String("control", "", "serve the fleet control channel on this address (e.g. 127.0.0.1:0)")
		readyFile   = flag.String("ready-file", "", "write a JSON ready file with the bound addresses once listening")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof on this address (e.g. 127.0.0.1:9412)")
		traceOut    = flag.String("trace", "", "record spans and write them as JSONL to this file at shutdown (merge with croesus-trace)")
	)
	flag.Parse()

	var o *obs.Obs
	if *debugAddr != "" || *traceOut != "" {
		o = obs.New()
		o.Tracer().SetProc("cloud")
	}
	debugBound := ""
	var err error
	if *debugAddr != "" {
		debugBound, err = obs.ServeDebug(*debugAddr, o.Reg)
		if err != nil {
			log.Fatalf("croesus-cloud: %v", err)
		}
		log.Printf("croesus-cloud: debug endpoint on http://%s/metrics", debugBound)
	}
	m := detect.YOLOv3Sim(detect.YOLOSize(*model), *seed)
	srv, err := tcpnet.NewCloudServerWith(tcpnet.CloudConfig{
		Model:      m,
		TimeScale:  *timeScale,
		MaxBatch:   *maxBatch,
		SLO:        *slo,
		MaxPending: *pending,
		CloudSpeed: *cloudSpeed,
		Obs:        o,
	})
	if err != nil {
		log.Fatalf("croesus-cloud: %v", err)
	}
	srv.Logf = tcpnet.StdLogf("cloud")
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("croesus-cloud: %v", err)
	}
	log.Printf("croesus-cloud: %s serving on %s (timescale %.2f, batched + shedding validator)", m.Name(), bound, *timeScale)

	// The fleet control channel: the orchestrator's quit op and a SIGTERM
	// take the same graceful-shutdown path.
	quit := make(chan struct{})
	var once sync.Once
	requestQuit := func() { once.Do(func() { close(quit) }) }
	var ctl *fleet.ControlServer
	if *controlAddr != "" {
		ctl, err = fleet.ServeControl(*controlAddr, fleet.CloudHandlers(srv, requestQuit))
		if err != nil {
			log.Fatalf("croesus-cloud: control: %v", err)
		}
		log.Printf("croesus-cloud: control channel on %s", ctl.Addr())
	}
	if *readyFile != "" {
		info := fleet.ReadyInfo{Role: "cloud", Addr: bound, Debug: debugBound}
		if ctl != nil {
			info.Control = ctl.Addr()
		}
		if err := fleet.WriteReady(*readyFile, info); err != nil {
			log.Fatalf("croesus-cloud: ready file: %v", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case <-quit:
	}
	bs := srv.BatcherStats()
	log.Printf("croesus-cloud: shutting down after %d frames (%d shed); %d batches, mean %.1f, max flush wait %s",
		srv.Handled(), srv.Shed(), bs.Batches, bs.MeanBatch, bs.MaxFlushWait.Round(time.Millisecond))
	if ctl != nil {
		ctl.Close()
	}
	srv.Close()
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("croesus-cloud: trace: %v", err)
		}
		defer f.Close()
		spans := o.Tracer().Spans()
		if err := obs.WriteJSONL(f, spans); err != nil {
			log.Fatalf("croesus-cloud: trace: %v", err)
		}
		log.Printf("croesus-cloud: wrote %s (%s)", *traceOut, obs.DescribeTrace(spans))
	}
}
