// Command croesus-cloud runs the cloud node: it listens for edge
// connections and answers frame-detection requests with the full model.
//
// Usage:
//
//	croesus-cloud -addr :9402 -model 416 -timescale 1.0
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"croesus/internal/detect"
	"croesus/internal/tcpnet"
)

func main() {
	var (
		addr      = flag.String("addr", ":9402", "listen address")
		model     = flag.Int("model", 416, "cloud model size: 320, 416, or 608")
		seed      = flag.Int64("seed", 42, "model seed (must match the edge/client seed)")
		timeScale = flag.Float64("timescale", 1.0, "inference latency multiplier (use <1 to speed up demos)")
	)
	flag.Parse()

	m := detect.YOLOv3Sim(detect.YOLOSize(*model), *seed)
	srv := tcpnet.NewCloudServer(m, *timeScale)
	srv.Logf = tcpnet.StdLogf("cloud")
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("croesus-cloud: %v", err)
	}
	log.Printf("croesus-cloud: %s serving on %s (timescale %.2f)", m.Name(), bound, *timeScale)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("croesus-cloud: shutting down after %d frames", srv.Handled())
	srv.Close()
}
