package main

import (
	"fmt"

	"croesus/internal/detect"
	"croesus/internal/metrics"
	"croesus/internal/video"
)

func main() {
	for _, prof := range video.AllProfiles() {
		frames := video.NewGenerator(prof, 11).Generate(200)
		edge := detect.TinyYOLOSim(42)
		cloud := detect.YOLOv3Sim(detect.YOLO416, 42)
		var edgeCounts metrics.Counts
		hist := map[int]int{}      // confidence decile histogram of edge dets
		wrongHist := map[int]int{} // deciles of dets that are wrong vs cloud
		for _, f := range frames {
			e := edge.Detect(f).Detections
			c := cloud.Detect(f).Detections
			edgeCounts.Add(metrics.ScoreClass(e, c, prof.QueryClass, 0.1))
			m := metrics.MatchBoxes(e, c, 0.1)
			matched := map[int]string{}
			for _, pair := range m.Matches {
				matched[pair.Pred] = c[pair.Ref].Label
			}
			for i, dd := range e {
				dec := int(dd.Confidence * 10)
				hist[dec]++
				lbl, ok := matched[i]
				if !ok || lbl != dd.Label {
					wrongHist[dec]++
				}
			}
		}
		fmt.Printf("%-22s edgeF1=%.3f\n", prof.Name, edgeCounts.F1())
		for dec := 0; dec < 10; dec++ {
			if hist[dec] > 0 {
				fmt.Printf("   conf %.1f-%.1f: %4d dets, %4d wrong (%.0f%%)\n",
					float64(dec)/10, float64(dec+1)/10, hist[dec], wrongHist[dec],
					100*float64(wrongHist[dec])/float64(hist[dec]))
			}
		}
	}
}
