// Command croesus-client streams a synthetic video to an edge node and
// reports per-frame initial/final latencies, corrections, and apologies —
// the V/AR headset of the paper's running example.
//
// Usage:
//
//	croesus-client -edge localhost:9401 -video park -frames 50 -fps 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"croesus/internal/obs"
	"croesus/internal/tcpnet"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

func profileByName(name string) (video.Profile, bool) {
	for _, p := range video.AllProfiles() {
		switch name {
		case p.Name:
			return p, true
		}
	}
	switch name {
	case "park":
		return video.ParkDog(), true
	case "street":
		return video.StreetVehicles(), true
	case "airport":
		return video.AirportRunway(), true
	case "mall":
		return video.MallSurveillance(), true
	case "pedestrians":
		return video.StreetPedestrians(), true
	}
	return video.Profile{}, false
}

func main() {
	var (
		edgeAddr  = flag.String("edge", "localhost:9401", "edge node address")
		vid       = flag.String("video", "park", "video: park, street, airport, mall, pedestrians")
		frames    = flag.Int("frames", 30, "number of frames to stream")
		fps       = flag.Float64("fps", 2, "capture rate (frames per second)")
		seed      = flag.Int64("seed", 11, "video generator seed")
		padding   = flag.Int("padding", 0, "extra payload bytes per frame (simulates encoded size on the wire)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof on this address (e.g. 127.0.0.1:9413)")
		traceOut  = flag.String("trace", "", "open a distributed trace per frame, record client.frame spans, and write them as JSONL to this file at exit (merge with croesus-trace)")
	)
	flag.Parse()

	prof, ok := profileByName(*vid)
	if !ok {
		log.Fatalf("croesus-client: unknown video %q", *vid)
	}
	if *fps > 0 {
		prof.FPS = *fps
	}
	var o *obs.Obs
	if *debugAddr != "" || *traceOut != "" {
		o = obs.New()
		o.Tracer().SetProc("client")
	}
	if *debugAddr != "" {
		bound, err := obs.ServeDebug(*debugAddr, o.Reg)
		if err != nil {
			log.Fatalf("croesus-client: %v", err)
		}
		log.Printf("croesus-client: debug endpoint on http://%s/metrics", bound)
	}
	client, err := tcpnet.Dial(*edgeAddr)
	if err != nil {
		log.Fatalf("croesus-client: %v", err)
	}
	defer client.Close()
	if *traceOut != "" {
		client.EnableTrace(o, vclock.NewReal(), prof.Name)
	}

	gen := video.NewGenerator(prof, *seed)
	interval := prof.FrameInterval()
	log.Printf("croesus-client: streaming %d frames of %s to %s at %.1f fps", *frames, prof.Name, *edgeAddr, prof.FPS)

	submitted := make([]*video.Frame, 0, *frames)
	for i := 0; i < *frames; i++ {
		f := gen.Next()
		if err := client.Submit(f, *padding); err != nil {
			log.Fatalf("croesus-client: submit frame %d: %v", f.Index, err)
		}
		submitted = append(submitted, f)
		time.Sleep(interval)
	}

	var sumInit, sumFinal time.Duration
	var sent, shed, corrections, apologies int
	for _, f := range submitted {
		r, err := client.WaitFrame(f.Index, 2*time.Minute)
		if err != nil {
			log.Fatalf("croesus-client: frame %d: %v", f.Index, err)
		}
		fmt.Printf("frame %3d: initial %4d labels in %7.1fms | final %4d labels in %7.1fms | cloud=%-5v shed=%-5v corrections=%d\n",
			r.FrameIndex, len(r.Initial), float64(r.InitialLatency)/float64(time.Millisecond),
			len(r.Final), float64(r.FinalLatency)/float64(time.Millisecond), r.SentToCloud, r.Shed, r.Corrections)
		for _, a := range r.Apologies {
			fmt.Printf("           apology: %s\n", a)
		}
		sumInit += r.InitialLatency
		sumFinal += r.FinalLatency
		corrections += r.Corrections
		apologies += len(r.Apologies)
		if r.SentToCloud {
			sent++
		}
		if r.Shed {
			shed++
		}
	}
	n := time.Duration(len(submitted))
	fmt.Printf("\nsummary: %d frames | BU %.1f%% | %d shed by the cloud | mean initial %.1fms | mean final %.1fms | %d corrections | %d apologies\n",
		len(submitted), 100*float64(sent)/float64(len(submitted)), shed,
		float64(sumInit/n)/float64(time.Millisecond), float64(sumFinal/n)/float64(time.Millisecond),
		corrections, apologies)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("croesus-client: trace: %v", err)
		}
		defer f.Close()
		spans := o.Tracer().Spans()
		if err := obs.WriteJSONL(f, spans); err != nil {
			log.Fatalf("croesus-client: trace: %v", err)
		}
		log.Printf("croesus-client: wrote %s (%s)", *traceOut, obs.DescribeTrace(spans))
	}
}
