// Command croesus-client streams a synthetic video to an edge node and
// reports per-frame initial/final latencies, corrections, and apologies —
// the V/AR headset of the paper's running example.
//
// Usage:
//
//	croesus-client -edge localhost:9401 -video park -frames 50 -fps 2
//	croesus-client -camera cam0 -control 127.0.0.1:0 -report cam0.json
//
// The streaming loop is fleet.CamStream — the same loop the croesus-fleet
// orchestrator runs for in-process cameras — so the client survives edge
// restarts by redialing (frames submitted while the edge is dark count as
// dropped) and takes live control ops over -control: rate shifts,
// redials to a new edge (camera migration), and a graceful quit. SIGTERM
// takes the same graceful path: the stream stops, in-flight frames drain
// briefly, and the -report JSON and -trace JSONL still flush.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"croesus/internal/fleet"
	"croesus/internal/obs"
	"croesus/internal/video"
)

func profileByName(name string) (video.Profile, bool) {
	for _, p := range video.AllProfiles() {
		switch name {
		case p.Name:
			return p, true
		}
	}
	switch name {
	case "park":
		return video.ParkDog(), true
	case "street":
		return video.StreetVehicles(), true
	case "airport":
		return video.AirportRunway(), true
	case "mall":
		return video.MallSurveillance(), true
	case "pedestrians":
		return video.StreetPedestrians(), true
	}
	return video.Profile{}, false
}

func main() {
	var (
		edgeAddr     = flag.String("edge", "localhost:9401", "edge node address")
		vid          = flag.String("video", "park", "video: park, street, airport, mall, pedestrians")
		camera       = flag.String("camera", "client", "camera identity in traces and the fleet report")
		frames       = flag.Int("frames", 30, "number of frames to stream")
		fps          = flag.Float64("fps", 2, "capture rate (frames per second; 0 keeps the profile's rate)")
		seed         = flag.Int64("seed", 11, "video generator seed")
		padding      = flag.Int("padding", 0, "extra payload bytes per frame (simulates encoded size on the wire)")
		timeScale    = flag.Float64("timescale", 1.0, "wall pacing compression: the capture interval sleeps interval×timescale")
		frameTimeout = flag.Duration("frame-timeout", 30*time.Second, "wall bound on one frame's wait before it counts as dropped")
		controlAddr  = flag.String("control", "", "serve the fleet control channel on this address (e.g. 127.0.0.1:0)")
		readyFile    = flag.String("ready-file", "", "write a JSON ready file with the control address once streaming starts")
		reportPath   = flag.String("report", "", "write the stream's report JSON to this file at exit (normal end, quit op, or SIGTERM)")
		quiet        = flag.Bool("quiet", false, "suppress per-frame output (the summary and errors still print)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof on this address (e.g. 127.0.0.1:9413)")
		traceOut     = flag.String("trace", "", "open a distributed trace per frame, record client.frame spans, and write them as JSONL to this file at exit (merge with croesus-trace)")
	)
	flag.Parse()

	prof, ok := profileByName(*vid)
	if !ok {
		log.Fatalf("croesus-client: unknown video %q", *vid)
	}
	if *fps > 0 {
		prof.FPS = *fps
	}
	var o *obs.Obs
	if *debugAddr != "" || *traceOut != "" {
		o = obs.New()
		o.Tracer().SetProc(*camera)
	}
	if *debugAddr != "" {
		bound, err := obs.ServeDebug(*debugAddr, o.Reg)
		if err != nil {
			log.Fatalf("croesus-client: %v", err)
		}
		log.Printf("croesus-client: debug endpoint on http://%s/metrics", bound)
	}

	var onFrame func(fleet.FrameRecord)
	if !*quiet {
		onFrame = func(r fleet.FrameRecord) {
			fmt.Printf("frame %3d: initial %4d labels in %7.1fms | final %4d labels in %7.1fms | cloud=%-5v shed=%-5v corrections=%d apologies=%d\n",
				r.Index, r.InitialLabels, float64(r.InitialLatency)/float64(time.Millisecond),
				r.FinalLabels, float64(r.FinalLatency)/float64(time.Millisecond),
				r.SentToCloud, r.Shed, r.Corrections, r.Apologies)
		}
	}
	cs := fleet.NewCamStream(fleet.CamConfig{
		Camera:       *camera,
		Edge:         *edgeAddr,
		Profile:      prof,
		Seed:         *seed,
		Frames:       *frames,
		Padding:      *padding,
		TimeScale:    *timeScale,
		FrameTimeout: *frameTimeout,
		Obs:          o,
		Logf:         log.Printf,
		OnFrame:      onFrame,
	})

	var ctl *fleet.ControlServer
	if *controlAddr != "" {
		var err error
		ctl, err = fleet.ServeControl(*controlAddr, fleet.ClientHandlers(cs, nil))
		if err != nil {
			log.Fatalf("croesus-client: control: %v", err)
		}
		log.Printf("croesus-client: control channel on %s", ctl.Addr())
	}
	if *readyFile != "" {
		info := fleet.ReadyInfo{Role: "client"}
		if ctl != nil {
			info.Control = ctl.Addr()
		}
		if err := fleet.WriteReady(*readyFile, info); err != nil {
			log.Fatalf("croesus-client: ready file: %v", err)
		}
	}

	// SIGTERM/SIGINT stop the stream gracefully; the report and trace
	// below still flush.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("croesus-client: signal — stopping the stream")
		cs.Stop()
	}()

	log.Printf("croesus-client: streaming %d frames of %s to %s at %.1f fps", *frames, prof.Name, *edgeAddr, prof.FPS)
	rep := cs.Run()
	if ctl != nil {
		ctl.Close()
	}

	printSummary(rep)
	if *reportPath != "" {
		if err := writeReport(*reportPath, rep); err != nil {
			log.Fatalf("croesus-client: report: %v", err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("croesus-client: trace: %v", err)
		}
		defer f.Close()
		spans := o.Tracer().Spans()
		if err := obs.WriteJSONL(f, spans); err != nil {
			log.Fatalf("croesus-client: trace: %v", err)
		}
		log.Printf("croesus-client: wrote %s (%s)", *traceOut, obs.DescribeTrace(spans))
	}
}

func printSummary(rep fleet.ClientReport) {
	var sumInit, sumFinal time.Duration
	var answered, sent, shed, corrections, apologies int
	for _, r := range rep.Frames {
		if r.Dropped {
			continue
		}
		answered++
		sumInit += r.InitialLatency
		sumFinal += r.FinalLatency
		corrections += r.Corrections
		apologies += r.Apologies
		if r.SentToCloud {
			sent++
		}
		if r.Shed {
			shed++
		}
	}
	if answered == 0 {
		fmt.Printf("\nsummary: %d frames submitted, none answered (%d dropped)\n", rep.Submitted, rep.Dropped)
		return
	}
	n := time.Duration(answered)
	fmt.Printf("\nsummary: %d frames (%d dropped) | BU %.1f%% | %d shed by the cloud | mean initial %.1fms | mean final %.1fms | %d corrections | %d apologies\n",
		answered, rep.Dropped, 100*float64(sent)/float64(answered), shed,
		float64(sumInit/n)/float64(time.Millisecond), float64(sumFinal/n)/float64(time.Millisecond),
		corrections, apologies)
}

// writeReport atomically writes the stream report JSON (write then
// rename, so a collector never reads a torn file).
func writeReport(path string, rep fleet.ClientReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
