package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"croesus"
	"croesus/internal/obs"
	"croesus/internal/transport"
	"croesus/internal/vclock"
	"croesus/internal/wire"
)

// benchResult mirrors one entry of the BENCH_N.json files. Transport
// rows fill the payload fields; cluster-scale rows fill Cameras/Edges and
// FramesPerSec instead.
type benchResult struct {
	Name         string  `json:"name"`
	Transport    string  `json:"transport,omitempty"`
	PayloadBytes int     `json:"payload_bytes,omitempty"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Cameras      int     `json:"cameras,omitempty"`
	Edges        int     `json:"edges,omitempty"`
	FramesPerSec float64 `json:"frames_per_sec,omitempty"`
}

// benchFile is the BENCH_N.json envelope.
type benchFile struct {
	PR        int           `json:"pr"`
	Date      string        `json:"date"`
	Benchmark string        `json:"benchmark"`
	Command   string        `json:"command"`
	Notes     string        `json:"notes"`
	Results   []benchResult `json:"results"`
}

const benchIters = 3000

// benchReps repeats each timed loop and keeps the fastest repetition.
// Loopback-socket timings on a shared container jitter by tens of
// percent run to run; the minimum is the stable, contention-free cost,
// which is what a regression gate must compare.
const benchReps = 5

// regressionThreshold is the tolerated per-message cost growth against
// the baseline file before -compare fails the build.
const regressionThreshold = 0.25

// runTransportBench measures the per-message cost of both fleet
// transports at the two canonical payloads — the same cases
// BenchmarkTransport pins — plus traced TCP variants that carry a
// wire-level trace context and emit a net.hop span per send, so the
// tracing tax is a recorded number rather than a guess.
func runTransportBench() []benchResult {
	payloads := []struct {
		name string
		n    int
	}{{"frame-32KiB", 32 << 10}, {"msg-256B", 256}}

	var out []benchResult
	for _, p := range payloads {
		out = append(out, measureSim(p.name, p.n))
		out = append(out, measureTCP(p.name, p.n, false))
		out = append(out, measureTCP(p.name, p.n, true))
	}
	return out
}

func measure(iters int, op func()) (nsPerOp float64, bytesPerOp, allocsPerOp int64) {
	for i := 0; i < 100; i++ { // warmup
		op()
	}
	var m0, m1 runtime.MemStats
	for rep := 0; rep < benchReps; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			op()
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		if rep == 0 || ns < nsPerOp {
			n := int64(iters)
			nsPerOp = ns
			bytesPerOp = int64(m1.TotalAlloc-m0.TotalAlloc) / n
			allocsPerOp = int64(m1.Mallocs-m0.Mallocs) / n
		}
	}
	return nsPerOp, bytesPerOp, allocsPerOp
}

func measureSim(name string, n int) benchResult {
	tr := transport.NewSim()
	if err := tr.Provision([]transport.EdgeProfile{{ID: "a"}}); err != nil {
		fatalBench(err)
	}
	defer tr.Close()
	clk := vclock.NewSim()
	path := tr.ClientEdge(0)
	var ns float64
	var bpo, apo int64
	clk.Run(func() {
		ns, bpo, apo = measure(benchIters, func() { path.Send(clk, n) })
	})
	return benchResult{
		Name: "BenchmarkTransport/sim/" + name, Transport: "sim",
		PayloadBytes: n, Iterations: benchIters,
		NsPerOp: ns, BytesPerOp: bpo, AllocsPerOp: apo,
	}
}

func measureTCP(name string, n int, traced bool) benchResult {
	tr := transport.NewTCP()
	if err := tr.Provision([]transport.EdgeProfile{{ID: "a"}}); err != nil {
		fatalBench(err)
	}
	defer tr.Close()
	clk := vclock.NewReal()
	label := "tcp"
	var op func()
	path := tr.ClientEdge(0)
	if traced {
		label = "tcp-traced"
		o := obs.New()
		tr.SetObs(o, clk)
		tc := &wire.TraceCtx{Trace: 1, Parent: 2}
		op = func() { transport.SendCtx(path, clk, n, tc) }
	} else {
		op = func() { path.Send(clk, n) }
	}
	op() // dial outside the timer
	ns, bpo, apo := measure(benchIters, op)
	return benchResult{
		Name: "BenchmarkTransport/" + label + "/" + name, Transport: label,
		PayloadBytes: n, Iterations: benchIters,
		NsPerOp: ns, BytesPerOp: bpo, AllocsPerOp: apo,
	}
}

// runClusterScaleBench measures fleet-simulation throughput at scale —
// the BenchmarkClusterScale curve (16 cameras per edge, 8 frames per
// camera) up to maxCams cameras. Each point runs the full cluster (edge
// pipelines, batched cloud validation, report merge) on the sharded sim
// clock; best of benchScaleReps runs is recorded, since a cold run pays
// one-time seed-expansion and pool-fill costs.
func runClusterScaleBench(maxCams int) []benchResult {
	const framesPerCam = 8
	const benchScaleReps = 3
	profiles := croesus.Videos()
	var out []benchResult
	for _, tc := range []struct{ cams, edges int }{{64, 4}, {256, 16}, {1024, 64}} {
		if tc.cams > maxCams {
			continue
		}
		cams := make([]croesus.CameraSpec, tc.cams)
		for i := range cams {
			cams[i] = croesus.CameraSpec{
				Profile: profiles[i%len(profiles)],
				Seed:    int64(11 + i*101),
				Frames:  framesPerCam,
			}
		}
		edges := make([]croesus.EdgeSpec, tc.edges)
		for i := range edges {
			edges[i] = croesus.EdgeSpec{ID: fmt.Sprintf("edge-%02d", i)}
		}
		run := func() time.Duration {
			t0 := time.Now()
			rep, err := croesus.RunCluster(croesus.ClusterConfig{
				Clock:   croesus.NewSimClock(),
				Cameras: cams,
				Edges:   edges,
				Batcher: croesus.BatcherConfig{MaxBatch: 8, SLO: 80 * time.Millisecond},
			})
			if err != nil {
				fatalBench(err)
			}
			if rep.Frames != tc.cams*framesPerCam {
				fatalBench(fmt.Errorf("cams-%d: lost frames: %d of %d", tc.cams, rep.Frames, tc.cams*framesPerCam))
			}
			return time.Since(t0)
		}
		run() // warmup: seed cache, pools
		best := run()
		for rep := 1; rep < benchScaleReps; rep++ {
			if d := run(); d < best {
				best = d
			}
		}
		frames := tc.cams * framesPerCam
		r := benchResult{
			Name:         fmt.Sprintf("BenchmarkClusterScale/cams-%d", tc.cams),
			Iterations:   benchScaleReps,
			NsPerOp:      float64(best.Nanoseconds()),
			Cameras:      tc.cams,
			Edges:        tc.edges,
			FramesPerSec: float64(frames) / best.Seconds(),
		}
		fmt.Printf("%-44s %8d cams %4d edges  %10.0f frames/s  (%s/run)\n",
			r.Name, tc.cams, tc.edges, r.FramesPerSec, best.Round(time.Millisecond))
		out = append(out, r)
	}
	return out
}

// compareBench runs the transport bench and gates it against a recorded
// baseline: any case present in both whose ns_per_op grew by more than
// regressionThreshold fails. Returns the number of regressions.
func compareBench(baselinePath string, results []benchResult) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fatalBench(err)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalBench(fmt.Errorf("%s: %w", baselinePath, err))
	}
	baseline := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	regressions := 0
	for _, r := range results {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Printf("%-44s %10.1f ns/op  (no baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > 1+regressionThreshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-44s %10.1f ns/op  baseline %10.1f  %+6.1f%%  %s\n",
			r.Name, r.NsPerOp, b.NsPerOp, (ratio-1)*100, verdict)
	}
	return regressions
}

func writeBenchJSON(path, command string, results []benchResult, notes string) {
	f := benchFile{
		Benchmark: "BenchmarkTransport + BenchmarkClusterScale",
		Date:      time.Now().Format("2006-01-02"),
		Command:   command,
		Notes:     notes,
		Results:   results,
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatalBench(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fatalBench(err)
	}
	fmt.Printf("wrote %s (%d cases)\n", path, len(results))
}

func fatalBench(err error) {
	fmt.Fprintf(os.Stderr, "croesus-bench: %v\n", err)
	os.Exit(1)
}
