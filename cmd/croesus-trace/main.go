// Command croesus-trace merges per-process JSONL span streams into one
// causally ordered distributed trace. Each process of a real deployment
// (croesus-client, croesus-edge, croesus-cloud — all run with -trace)
// records spans against its own clock; the collector estimates per-process
// clock offsets from the RPC pairs in the trace itself (interval
// midpoints, median per process pair, composed by BFS from a reference
// process), shifts every span onto the reference clock, and writes the
// merged timeline as Chrome trace_event JSON (Perfetto-loadable) or JSONL.
//
// It also runs the streaming watchdog over the merged stream: standing
// trace invariants (a span's parent must exist; no child may start before
// its parent after alignment; no trace may end rootless) and SLO windows
// (deadline hit-rate, shed budget) become structured incidents. With
// -check, causality incidents are hard failures (exit 1) — the CI
// multi-process smoke runs exactly that.
//
// Usage:
//
//	croesus-trace -o merged.json client.jsonl edge.jsonl cloud.jsonl
//	croesus-trace -check -slo 250ms edge.jsonl cloud.jsonl
//	croesus-trace -ref edge -tolerance 10ms -o merged.jsonl *.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"croesus/internal/obs"
	"croesus/internal/obs/collect"
)

func main() {
	var (
		outPath   = flag.String("o", "", "write the merged trace here (.jsonl = JSONL, else Chrome trace_event JSON)")
		ref       = flag.String("ref", "", "reference process whose clock becomes the merged timeline (default: largest stream)")
		tolerance = flag.Duration("tolerance", collect.DefaultTolerance, "causality slack after clock alignment")
		check     = flag.Bool("check", false, "exit 1 when any causality incident survives (parent_missing, child_before_parent, span_leak)")
		slo       = flag.Duration("slo", 0, "per-frame deadline for SLO compliance windows (0 disables)")
		window    = flag.Int("window", 32, "frames per SLO compliance window")
		maxMiss   = flag.Float64("max-miss", 0.1, "tolerated deadline-miss fraction per window")
		maxShed   = flag.Float64("max-shed", 0.25, "tolerated shed fraction per window")
		incPath   = flag.String("incidents", "", "write incidents as JSONL to this file")
		quiet     = flag.Bool("q", false, "suppress the per-trace summary")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "croesus-trace: no input files (pass one JSONL span stream per process)")
		os.Exit(2)
	}

	streams := make([]collect.Stream, 0, flag.NArg())
	for _, path := range flag.Args() {
		st, err := collect.ReadFile(path)
		if err != nil {
			fatalf("read %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "croesus-trace: %s: %d spans, proc %q\n", path, len(st.Spans), st.Proc)
		streams = append(streams, st)
	}

	m, err := collect.Merge(streams, collect.Options{Reference: *ref, Tolerance: *tolerance})
	if err != nil {
		fatalf("%v", err)
	}
	for _, p := range m.Procs {
		fmt.Fprintf(os.Stderr, "croesus-trace: clock %-8s %+v (reference %s)\n", p, m.Offsets[p], m.Reference)
	}
	for pair, n := range m.Pairs {
		fmt.Fprintf(os.Stderr, "croesus-trace: alignment pair %s: %d samples\n", pair, n)
	}
	for _, p := range m.Unaligned {
		fmt.Fprintf(os.Stderr, "croesus-trace: WARNING: process %q has no RPC pair linking it to %q — left unaligned\n", p, m.Reference)
	}

	wd := collect.NewWatchdog(collect.WatchdogConfig{
		SLO: *slo, Window: *window,
		MaxMissRate: *maxMiss, MaxShedRate: *maxShed,
		Tolerance: m.Tolerance(),
	})
	for _, s := range m.Spans {
		wd.Feed(s)
	}
	incidents := wd.Finish()

	if !*quiet {
		paths := m.CriticalPaths()
		fmt.Print(collect.FormatSummary(collect.Summarize(paths)))
	}
	causality := 0
	for _, in := range incidents {
		if collect.CausalityKinds[in.Kind] {
			causality++
		}
		fmt.Fprintf(os.Stderr, "croesus-trace: incident %s at %v: %s\n", in.Kind, in.At, in.Detail)
	}
	fmt.Fprintf(os.Stderr, "croesus-trace: %d spans, %d incidents (%d causality)\n", len(m.Spans), len(incidents), causality)

	if *incPath != "" {
		f, err := os.Create(*incPath)
		if err != nil {
			fatalf("%v", err)
		}
		enc := json.NewEncoder(f)
		for _, in := range incidents {
			if err := enc.Encode(in); err != nil {
				fatalf("write incidents: %v", err)
			}
		}
		f.Close()
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		if isJSONL(*outPath) {
			err = obs.WriteJSONL(f, m.Spans)
		} else {
			err = m.WriteChrome(f, incidents)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("write %s: %v", *outPath, err)
		}
		fmt.Fprintf(os.Stderr, "croesus-trace: wrote %s\n", *outPath)
	}
	if *check && causality > 0 {
		fmt.Fprintf(os.Stderr, "croesus-trace: FAIL: %d causality incidents\n", causality)
		os.Exit(1)
	}
}

func isJSONL(path string) bool {
	return len(path) > 6 && path[len(path)-6:] == ".jsonl"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "croesus-trace: "+format+"\n", args...)
	os.Exit(1)
}
