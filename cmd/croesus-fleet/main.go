// Command croesus-fleet deploys a scenario on real processes: it spawns
// croesus-cloud, one croesus-edge per topology edge, and one
// croesus-client per camera (or attaches to a pre-launched fleet), plays
// the scenario's event timeline over each process's control channel, and
// merges the per-process reports into the same ClusterReport the
// in-process deployments print — so one scenario file runs unchanged on
// the sim, on loopback TCP, and on a real multi-process fleet.
//
// Timeline events map to real actions: edge_crash is a SIGKILL (with
// restart_after, a respawn on the same address and WAL — clients redial,
// the store replays), edge_retire drains the edge and migrates its
// cameras, link_fault blackholes the edge's modeled cloud path,
// workload_shift and migrate_camera steer the clients live.
//
// Usage:
//
//	croesus-fleet -scenario testdata/fleet-crash.json -bin ./bin -timescale 0.1
//	croesus-fleet -scenario s.json -shaped -trace -workdir /tmp/fleet
//	croesus-fleet -scenario s.json -attach-cloud 127.0.0.1:9502 \
//	    -attach-edge e0=127.0.0.1:9401,127.0.0.1:9501
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"croesus/internal/fleet"
	"croesus/internal/obs"
	"croesus/internal/obs/collect"
	"croesus/internal/scenario"
)

// attachEdges collects repeated -attach-edge flags ("id=data,control").
type attachEdges []fleet.AttachEdge

func (l *attachEdges) String() string {
	var parts []string
	for _, e := range *l {
		parts = append(parts, fmt.Sprintf("%s=%s,%s", e.ID, e.Addr, e.Control))
	}
	return strings.Join(parts, " ")
}

func (l *attachEdges) Set(v string) error {
	id, addrs, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want id=data-addr,control-addr, got %q", v)
	}
	data, control, ok := strings.Cut(addrs, ",")
	if !ok {
		return fmt.Errorf("want id=data-addr,control-addr, got %q", v)
	}
	*l = append(*l, fleet.AttachEdge{ID: id, Addr: data, Control: control})
	return nil
}

func main() {
	var edges attachEdges
	var (
		scenarioPath = flag.String("scenario", "", "scenario file to deploy (required): topology + event timeline, same schema as croesus-cluster")
		binDir       = flag.String("bin", "", "directory holding the croesus-edge/croesus-cloud/croesus-client binaries (default: this executable's directory)")
		workDir      = flag.String("workdir", "", "directory for WALs, logs, per-process reports, and traces (default: a fresh temp dir)")
		timeScale    = flag.Float64("timescale", 1.0, "wall-clock compression shared by every process: 0.1 runs a 20s scenario in ~2s")
		shaped       = flag.Bool("shaped", false, "shape each edge's client and cloud hops with the sim's modeled link parameters (latency + bandwidth)")
		trace        = flag.Bool("trace", false, "run every process with -trace, then merge, clock-align, and orphan-prune the spans into one distributed trace")
		frameTimeout = flag.Duration("frame-timeout", 30*time.Second, "wall bound on one frame's wait at a client before it counts as dropped")
		jsonOut      = flag.String("json", "", "write the run's merged report and verdicts as JSON to this file")
		attachCloud  = flag.String("attach-cloud", "", "attach mode: the pre-launched cloud's control address (cameras run in-process; crash events are rejected)")
	)
	flag.Var(&edges, "attach-edge", "attach mode: a pre-launched edge as id=data-addr,control-addr (repeatable)")
	flag.Parse()

	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "croesus-fleet: -scenario is required")
		os.Exit(2)
	}
	s, err := scenario.Load(*scenarioPath)
	if err != nil {
		fatalf("%v", err)
	}

	opts := fleet.Options{
		BinDir:       *binDir,
		WorkDir:      *workDir,
		TimeScale:    *timeScale,
		Shaped:       *shaped,
		Trace:        *trace,
		FrameTimeout: *frameTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if len(edges) > 0 || *attachCloud != "" {
		opts.Attach = &fleet.Attach{CloudControl: *attachCloud, Edges: edges}
	} else if opts.BinDir == "" {
		exe, err := os.Executable()
		if err != nil {
			fatalf("cannot locate binaries: %v (pass -bin)", err)
		}
		opts.BinDir = filepath.Dir(exe)
	}

	start := time.Now()
	res, err := fleet.Run(s, opts)
	if err != nil {
		fatalf("%v", err)
	}

	// The merged report goes to stdout alone, like croesus-cluster's;
	// verdicts and run facts go to stderr.
	fmt.Print(res.Report.Format())
	fmt.Fprintf(os.Stderr, "(scenario %q on fleet: %s of fleet time in %s of wall time; workdir %s)\n",
		s.Name, res.Report.Elapsed.Round(time.Millisecond), time.Since(start).Round(time.Millisecond), res.WorkDir)
	for _, er := range res.Edges {
		switch {
		case er.DurableOK:
			fmt.Fprintf(os.Stderr, "durability %s: OK (%d WAL records, %d replayed at startup)\n", er.Edge, er.DurableRecords, er.WALReplayed)
		case er.DurableErr != "":
			fmt.Fprintf(os.Stderr, "durability %s: %s\n", er.Edge, er.DurableErr)
		}
	}
	if res.Trace != nil {
		fmt.Fprintf(os.Stderr, "trace: %d spans merged from %d streams (reference %s, %d orphans pruned), %d incidents\n",
			len(res.Trace.Spans), len(res.TraceFiles), res.Trace.Reference, res.PrunedSpans, len(res.Incidents))
		for _, inc := range res.Incidents {
			fmt.Fprintf(os.Stderr, "incident: %s\n", inc)
		}
		merged := filepath.Join(res.WorkDir, "trace-merged.jsonl")
		if err := writeSpans(merged, res.Trace.Spans); err != nil {
			fmt.Fprintf(os.Stderr, "croesus-fleet: merged trace: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "trace: merged stream written to %s\n", merged)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fatalf("-json: %v", err)
		}
	}
	if !res.DurabilityOK {
		fmt.Fprintln(os.Stderr, "croesus-fleet: FAIL — a WAL verify did not match its edge's live store")
		os.Exit(1)
	}
}

func writeSpans(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteJSONL(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSON serializes the run for machine consumption (the CI smoke
// asserts on these fields with jq).
func writeJSON(path string, res *fleet.Result) error {
	out := struct {
		Report       any                  `json:"report"`
		Clients      []fleet.ClientReport `json:"clients"`
		Edges        []fleet.EdgeReport   `json:"edges"`
		Cloud        *fleet.CloudReport   `json:"cloud,omitempty"`
		DurabilityOK bool                 `json:"durability_ok"`
		PrunedSpans  int                  `json:"pruned_spans"`
		Incidents    []collect.Incident   `json:"incidents,omitempty"`
		WorkDir      string               `json:"workdir"`
	}{res.Report, res.Clients, res.Edges, res.Cloud, res.DurabilityOK, res.PrunedSpans, res.Incidents, res.WorkDir}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "croesus-fleet: "+format+"\n", args...)
	os.Exit(1)
}
